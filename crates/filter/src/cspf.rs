//! A stack-machine packet filter in the style of the original CMU/Stanford
//! Packet Filter (Mogul, Rashid & Accetta, SOSP '87 — the paper's
//! reference \[18\]).
//!
//! "Filter programs composed of stack operations and operators are
//! interpreted by a kernel-resident program at packet reception time."
//! Operands are 16-bit words; the packet is addressed in 16-bit word
//! offsets. Binary operators pop two operands and push the result; the
//! short-circuit variants (`CAnd`/`COr`) can terminate early, as in the
//! original design. The packet is accepted if the final stack top is
//! nonzero (or the stack is empty).

use crate::Demux;

/// One CSPF instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CspfInstr {
    /// Push a literal.
    PushLit(u16),
    /// Push the 16-bit packet word at word offset `k` (rejects if short).
    PushWord(u16),
    /// Pop b, pop a, push `a == b`.
    Eq,
    /// Pop b, pop a, push `a != b`.
    Ne,
    /// Pop b, pop a, push `a & b`.
    And,
    /// Pop b, pop a, push `a | b`.
    Or,
    /// Pop b, pop a, push `a < b` (unsigned).
    Lt,
    /// Pop b, pop a, push `a > b` (unsigned).
    Gt,
    /// Pop b, pop a: if `a == b` continue, else reject immediately
    /// (the short-circuit "conjunctive" operator).
    CandEq,
    /// Pop b, pop a: if `a == b` accept immediately, else continue
    /// (the short-circuit "disjunctive" operator).
    CorEq,
}

/// A CSPF program.
#[derive(Debug, Clone)]
pub struct CspfProgram {
    instrs: Vec<CspfInstr>,
}

impl CspfProgram {
    /// Wraps an instruction list (no validation needed: the machine has no
    /// jumps, so every program terminates).
    pub fn new(instrs: Vec<CspfInstr>) -> CspfProgram {
        CspfProgram { instrs }
    }

    /// Runs the filter. Stack underflow and short packets reject.
    pub fn run(&self, pkt: &[u8]) -> bool {
        let mut stack: Vec<u16> = Vec::with_capacity(8);
        for ins in &self.instrs {
            match *ins {
                CspfInstr::PushLit(v) => stack.push(v),
                CspfInstr::PushWord(w) => {
                    let off = usize::from(w) * 2;
                    match pkt.get(off..off + 2) {
                        Some(b) => stack.push(u16::from_be_bytes([b[0], b[1]])),
                        None => return false,
                    }
                }
                CspfInstr::Eq
                | CspfInstr::Ne
                | CspfInstr::And
                | CspfInstr::Or
                | CspfInstr::Lt
                | CspfInstr::Gt
                | CspfInstr::CandEq
                | CspfInstr::CorEq => {
                    let (Some(b), Some(a)) = (stack.pop(), stack.pop()) else {
                        return false;
                    };
                    match *ins {
                        CspfInstr::Eq => stack.push(u16::from(a == b)),
                        CspfInstr::Ne => stack.push(u16::from(a != b)),
                        CspfInstr::And => stack.push(a & b),
                        CspfInstr::Or => stack.push(a | b),
                        CspfInstr::Lt => stack.push(u16::from(a < b)),
                        CspfInstr::Gt => stack.push(u16::from(a > b)),
                        CspfInstr::CandEq => {
                            if a != b {
                                return false;
                            }
                        }
                        CspfInstr::CorEq => {
                            if a == b {
                                return true;
                            }
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
        match stack.last() {
            Some(&v) => v != 0,
            None => true, // empty stack accepts, as in the original
        }
    }

    /// The raw instruction slice.
    pub fn instrs(&self) -> &[CspfInstr] {
        &self.instrs
    }
}

impl Demux for CspfProgram {
    fn matches(&self, frame: &[u8]) -> bool {
        self.run(frame)
    }

    fn instruction_count(&self) -> usize {
        self.instrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CspfInstr::*;

    #[test]
    fn empty_program_accepts() {
        assert!(CspfProgram::new(vec![]).run(&[1, 2, 3, 4]));
    }

    #[test]
    fn literal_comparison() {
        let p = CspfProgram::new(vec![PushLit(5), PushLit(5), Eq]);
        assert!(p.run(&[]));
        let p = CspfProgram::new(vec![PushLit(5), PushLit(6), Eq]);
        assert!(!p.run(&[]));
    }

    #[test]
    fn packet_word_addressing() {
        // Word 1 = bytes 2..4.
        let p = CspfProgram::new(vec![PushWord(1), PushLit(0x0304), Eq]);
        assert!(p.run(&[1, 2, 3, 4]));
        assert!(!p.run(&[1, 2, 3, 5]));
    }

    #[test]
    fn short_packet_rejects() {
        let p = CspfProgram::new(vec![PushWord(8), PushLit(0), Eq]);
        assert!(!p.run(&[0u8; 4]));
    }

    #[test]
    fn stack_underflow_rejects() {
        let p = CspfProgram::new(vec![Eq]);
        assert!(!p.run(&[0u8; 4]));
        let p = CspfProgram::new(vec![PushLit(1), And]);
        assert!(!p.run(&[0u8; 4]));
    }

    #[test]
    fn cand_short_circuits() {
        // First CandEq fails -> later out-of-range PushWord never runs.
        let p = CspfProgram::new(vec![
            PushLit(1),
            PushLit(2),
            CandEq,
            PushWord(1000),
            PushLit(0),
            Eq,
        ]);
        assert!(!p.run(&[0u8; 4]));
    }

    #[test]
    fn cor_short_circuits_accept() {
        let p = CspfProgram::new(vec![PushLit(3), PushLit(3), CorEq, PushLit(0)]);
        assert!(p.run(&[]));
    }

    #[test]
    fn boolean_and_or_lt_gt_ne() {
        let p = CspfProgram::new(vec![PushLit(0b1100), PushLit(0b1010), And]);
        assert!(p.run(&[])); // 0b1000 != 0
        let p = CspfProgram::new(vec![PushLit(0), PushLit(0), Or]);
        assert!(!p.run(&[]));
        let p = CspfProgram::new(vec![PushLit(1), PushLit(2), Lt]);
        assert!(p.run(&[]));
        let p = CspfProgram::new(vec![PushLit(1), PushLit(2), Gt]);
        assert!(!p.run(&[]));
        let p = CspfProgram::new(vec![PushLit(1), PushLit(2), Ne]);
        assert!(p.run(&[]));
    }
}
