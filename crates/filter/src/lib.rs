//! `unp-filter` — software packet demultiplexing.
//!
//! On Ethernet, the link header identifies only the station and packet type,
//! so deciding the final user of a packet requires examining higher-layer
//! headers. The paper surveys three generations of software demux, all of
//! which this crate implements:
//!
//! * [`cspf`] — the original Packet Filter's stack-machine language
//!   (Mogul, Rashid & Accetta, SOSP '87), interpreted at reception time.
//!   The paper criticizes it as "memory intensive" and unlikely to scale
//!   with CPU speeds.
//! * [`bpf`] — the register-based BSD Packet Filter VM (McCanne & Jacobson,
//!   USENIX '93), "higher performance suited for modern RISC processors".
//! * [`compiled`] — a direct, per-connection match on the TCP/UDP 4-tuple,
//!   standing in for the paper's kernel-resident demux synthesized "via run
//!   time code synthesis or via compilation when new protocols are added";
//!   "the demultiplexing logic requires only a few instructions".
//!
//! All three implement [`Demux`], and the benchmark suite compares their
//! real execution cost (Criterion) and their modeled 1993 cost (Table 5).

pub mod bpf;
pub mod compiled;
pub mod cspf;
pub mod programs;

pub use bpf::{BpfInstr, BpfProgram};
pub use compiled::CompiledDemux;
pub use cspf::{CspfInstr, CspfProgram};

/// A packet-acceptance predicate over a raw frame.
pub trait Demux {
    /// Returns true if the frame belongs to this filter's endpoint.
    fn matches(&self, frame: &[u8]) -> bool;

    /// The filter's length in "instructions", used by the 1993 cost model
    /// to charge interpretation time.
    fn instruction_count(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::programs::{self, DemuxSpec};
    use super::*;
    use unp_wire::{
        EtherType, EthernetRepr, IpProtocol, Ipv4Addr, Ipv4Repr, MacAddr, SeqNum, TcpFlags, TcpRepr,
    };

    fn tcp_frame(src_ip: Ipv4Addr, dst_ip: Ipv4Addr, src_port: u16, dst_port: u16) -> Vec<u8> {
        let tcp = TcpRepr {
            src_port,
            dst_port,
            seq: SeqNum(1),
            ack_num: SeqNum(0),
            flags: TcpFlags::ack(),
            window: 1024,
            mss: None,
        };
        let seg = tcp.build_segment(src_ip, dst_ip, b"x");
        let ip = Ipv4Repr::simple(src_ip, dst_ip, IpProtocol::Tcp, seg.len());
        let dgram = ip.build_packet(&seg);
        EthernetRepr {
            dst: MacAddr::from_host_index(2),
            src: MacAddr::from_host_index(1),
            ethertype: EtherType::Ipv4,
        }
        .build_frame(&dgram)
    }

    #[test]
    fn all_three_demuxers_agree_on_tcp_connection() {
        let us = Ipv4Addr::new(10, 0, 0, 2);
        let them = Ipv4Addr::new(10, 0, 0, 1);
        let spec = DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Tcp,
            local_ip: us,
            local_port: 80,
            remote_ip: Some(them),
            remote_port: Some(5555),
        };
        let bpf = programs::bpf_demux(&spec);
        let cspf = programs::cspf_demux(&spec);
        let comp = CompiledDemux::from_spec(&spec);

        let hit = tcp_frame(them, us, 5555, 80);
        let wrong_port = tcp_frame(them, us, 5555, 81);
        let wrong_src = tcp_frame(Ipv4Addr::new(10, 0, 0, 9), us, 5555, 80);
        let wrong_sport = tcp_frame(them, us, 5556, 80);

        for (d, name) in [
            (&bpf as &dyn Demux, "bpf"),
            (&cspf as &dyn Demux, "cspf"),
            (&comp as &dyn Demux, "compiled"),
        ] {
            assert!(d.matches(&hit), "{name} should match");
            assert!(!d.matches(&wrong_port), "{name} wrong dst port");
            assert!(!d.matches(&wrong_src), "{name} wrong src ip");
            assert!(!d.matches(&wrong_sport), "{name} wrong src port");
            assert!(d.instruction_count() > 0);
        }
    }

    #[test]
    fn listening_spec_ignores_remote() {
        let us = Ipv4Addr::new(10, 0, 0, 2);
        let spec = DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Tcp,
            local_ip: us,
            local_port: 80,
            remote_ip: None,
            remote_port: None,
        };
        let bpf = programs::bpf_demux(&spec);
        let comp = CompiledDemux::from_spec(&spec);
        let a = tcp_frame(Ipv4Addr::new(10, 0, 0, 1), us, 1111, 80);
        let b = tcp_frame(Ipv4Addr::new(10, 0, 0, 7), us, 2222, 80);
        assert!(bpf.matches(&a) && bpf.matches(&b));
        assert!(comp.matches(&a) && comp.matches(&b));
    }

    #[test]
    fn non_ip_frames_rejected() {
        let us = Ipv4Addr::new(10, 0, 0, 2);
        let spec = DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Tcp,
            local_ip: us,
            local_port: 80,
            remote_ip: None,
            remote_port: None,
        };
        let bpf = programs::bpf_demux(&spec);
        let cspf = programs::cspf_demux(&spec);
        let comp = CompiledDemux::from_spec(&spec);
        let arp_frame = EthernetRepr {
            dst: MacAddr::BROADCAST,
            src: MacAddr::from_host_index(1),
            ethertype: EtherType::Arp,
        }
        .build_frame(&[0u8; 28]);
        assert!(!bpf.matches(&arp_frame));
        assert!(!cspf.matches(&arp_frame));
        assert!(!comp.matches(&arp_frame));
    }

    #[test]
    fn truncated_frames_rejected_not_panicking() {
        let us = Ipv4Addr::new(10, 0, 0, 2);
        let spec = DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Tcp,
            local_ip: us,
            local_port: 80,
            remote_ip: Some(Ipv4Addr::new(10, 0, 0, 1)),
            remote_port: Some(9),
        };
        let bpf = programs::bpf_demux(&spec);
        let cspf = programs::cspf_demux(&spec);
        let comp = CompiledDemux::from_spec(&spec);
        for len in 0..40 {
            let junk = vec![0u8; len];
            assert!(!bpf.matches(&junk));
            assert!(!cspf.matches(&junk));
            assert!(!comp.matches(&junk));
        }
    }

    #[test]
    fn table5_program_length_is_plausible() {
        // The cost model assumes the kernel demux program is ~14
        // instructions; keep the generated programs in that ballpark.
        let us = Ipv4Addr::new(10, 0, 0, 2);
        let spec = DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Tcp,
            local_ip: us,
            local_port: 80,
            remote_ip: Some(Ipv4Addr::new(10, 0, 0, 1)),
            remote_port: Some(9),
        };
        let bpf = programs::bpf_demux(&spec);
        assert!(
            (10..=20).contains(&bpf.instruction_count()),
            "bpf len = {}",
            bpf.instruction_count()
        );
    }
}
