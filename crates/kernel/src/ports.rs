//! Mach-port-like transferable rights.
//!
//! "Of particular benefit are Mach's 'ports', which form the basis for
//! secure and trusted communication channels between the library, the
//! server, and the network I/O module", and "once a connection is
//! established, it can be passed by the application to other applications
//! without involving the registry server or the network I/O module. The
//! port abstractions provided by the Mach kernel are sufficient for this"
//! — the `inetd` hand-off pattern (paper §3.2).
//!
//! [`PortSpace<T>`] is a kernel-maintained table of rights: each port names
//! a payload `T` (a connection record, a channel capability set) and has
//! exactly one holder. Holders can transfer their right; non-holders can
//! do nothing, and port ids are not guessable-by-construction within the
//! simulation (lookups always verify the holder).

use std::collections::HashMap;

use unp_buffers::OwnerTag;

/// A port right identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortId(u64);

/// Errors from port operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortError {
    /// Unknown port.
    NoSuchPort,
    /// The requester does not hold the right.
    NotHolder,
}

struct Entry<T> {
    holder: OwnerTag,
    payload: T,
}

/// A table of single-holder transferable rights. See module docs.
pub struct PortSpace<T> {
    entries: HashMap<u64, Entry<T>>,
    next: u64,
}

impl<T> Default for PortSpace<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PortSpace<T> {
    /// Creates an empty space.
    pub fn new() -> PortSpace<T> {
        PortSpace {
            entries: HashMap::new(),
            next: 0x7000_0000_0000_0001,
        }
    }

    /// Allocates a port holding `payload` on behalf of `holder`.
    pub fn allocate(&mut self, holder: OwnerTag, payload: T) -> PortId {
        let id = PortId(self.next);
        self.next += 0x1_0001;
        self.entries.insert(id.0, Entry { holder, payload });
        id
    }

    /// Reads the payload; only the holder may.
    pub fn get(&self, id: PortId, requester: OwnerTag) -> Result<&T, PortError> {
        let e = self.entries.get(&id.0).ok_or(PortError::NoSuchPort)?;
        if e.holder != requester {
            return Err(PortError::NotHolder);
        }
        Ok(&e.payload)
    }

    /// Transfers the right to `to`; only the current holder may.
    pub fn transfer(&mut self, id: PortId, from: OwnerTag, to: OwnerTag) -> Result<(), PortError> {
        let e = self.entries.get_mut(&id.0).ok_or(PortError::NoSuchPort)?;
        if e.holder != from {
            return Err(PortError::NotHolder);
        }
        e.holder = to;
        Ok(())
    }

    /// Destroys the port, returning the payload; only the holder may.
    pub fn destroy(&mut self, id: PortId, requester: OwnerTag) -> Result<T, PortError> {
        let e = self.entries.get(&id.0).ok_or(PortError::NoSuchPort)?;
        if e.holder != requester {
            return Err(PortError::NotHolder);
        }
        Ok(self.entries.remove(&id.0).expect("checked").payload)
    }

    /// The current holder of a port (the kernel can see this).
    pub fn holder(&self, id: PortId) -> Option<OwnerTag> {
        self.entries.get(&id.0).map(|e| e.holder)
    }

    /// Number of live ports.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no ports exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALICE: OwnerTag = OwnerTag(1);
    const BOB: OwnerTag = OwnerTag(2);

    #[test]
    fn holder_can_read_others_cannot() {
        let mut ps: PortSpace<&str> = PortSpace::new();
        let p = ps.allocate(ALICE, "conn-42");
        assert_eq!(ps.get(p, ALICE), Ok(&"conn-42"));
        assert_eq!(ps.get(p, BOB), Err(PortError::NotHolder));
    }

    #[test]
    fn transfer_moves_the_right_exclusively() {
        let mut ps: PortSpace<u32> = PortSpace::new();
        let p = ps.allocate(ALICE, 7);
        assert_eq!(ps.transfer(p, BOB, BOB), Err(PortError::NotHolder));
        assert_eq!(ps.transfer(p, ALICE, BOB), Ok(()));
        assert_eq!(ps.get(p, ALICE), Err(PortError::NotHolder));
        assert_eq!(ps.get(p, BOB), Ok(&7));
        assert_eq!(ps.holder(p), Some(BOB));
    }

    #[test]
    fn destroy_requires_holding() {
        let mut ps: PortSpace<u32> = PortSpace::new();
        let p = ps.allocate(ALICE, 9);
        assert_eq!(ps.destroy(p, BOB), Err(PortError::NotHolder));
        assert_eq!(ps.destroy(p, ALICE), Ok(9));
        assert_eq!(ps.destroy(p, ALICE), Err(PortError::NoSuchPort));
        assert!(ps.is_empty());
    }
}
