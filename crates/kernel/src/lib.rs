//! `unp-kernel` — the in-kernel **network I/O module**.
//!
//! "The third module implements network access by providing efficient and
//! secure input packet delivery, and outbound packet transmission. There is
//! one network I/O module for each host-network interface on the host"
//! (paper §3.3). This crate implements its three responsibilities:
//!
//! * **Protected transmission** — all access is through capabilities;
//!   "the network I/O module associates with the capability a template
//!   that constrains the header fields of packets sent using that
//!   capability" and verifies every outgoing packet against it
//!   (anti-impersonation; see [`template`]).
//! * **Protected delivery** — per-connection demux bindings (software
//!   filters on Ethernet, BQI rings on AN1) place incoming packets into a
//!   bounded per-channel ring shared with exactly one library. Delivery is
//!   zero-copy: the ring holds refcounted [`unp_buffers::Frame`] handles
//!   whose pooled backing buffers model the pinned shared-memory slots of
//!   the paper (`unp_buffers::SharedRegion` remains the explicit model of
//!   that memory; the hot path passes handles to it rather than copying
//!   through it).
//! * **Notification batching** — "our implementation attempts, where
//!   possible, to batch multiple network packets per semaphore notification
//!   in order to amortize the cost of signaling."
//!
//! [`ports`] adds the Mach-port-like rights the registry and libraries use
//! for connection hand-off.

pub mod ports;
pub mod template;

pub use ports::{PortId, PortSpace};
pub use template::{HeaderTemplate, TemplateViolation};

use std::collections::{BTreeSet, HashMap, VecDeque};

use unp_buffers::{Frame, OwnerTag, RingId};
use unp_filter::programs::DemuxSpec;
use unp_filter::{CompiledDemux, Demux};
pub use unp_sim::DemuxPath;
use unp_wire::{FlowKey, ListenKey};

/// Maps the cost model's path enum onto the journal's (the trace crate
/// sits below `unp-sim` and cannot import it).
fn path_kind(path: DemuxPath) -> unp_trace::PathKind {
    match path {
        DemuxPath::FlowTable => unp_trace::PathKind::FlowTable,
        DemuxPath::ListenTable => unp_trace::PathKind::ListenTable,
        DemuxPath::FilterScan => unp_trace::PathKind::FilterScan,
        DemuxPath::Hardware => unp_trace::PathKind::Hardware,
    }
}

/// Which demultiplexing tier a channel's spec distilled into at
/// installation. Each channel lives in exactly one tier, so the keyed
/// tables and the residual scan set partition the active population —
/// which is what lets the cross-tier winner be picked by id comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlowSlot {
    /// Fully-specified connection binding: exact-match 5-tuple table.
    Exact(FlowKey),
    /// Fully-wildcard remote (listening/unconnected-UDP): 3-tuple table.
    Listen(ListenKey),
    /// No keyed identity (half-wildcard remote, mismatched link framing):
    /// residual filter scan.
    Scan,
}

/// Fenwick (binary-indexed) tree over channel ids holding each **active**
/// channel's filter instruction count. `prefix(id + 1)` is exactly the
/// instructions a linear scan interprets through channel `id` inclusive,
/// so the scan-equivalent cost accounting survives with activation and
/// teardown as O(log n) point updates instead of an O(n) rebuild of
/// prefix-sum arrays.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct InstrFenwick {
    /// Standard 1-based Fenwick layout stored 0-based: `tree[i - 1]`
    /// covers the `lowbit(i)` positions ending at 1-based position `i`.
    tree: Vec<usize>,
}

impl InstrFenwick {
    /// Extends coverage to `n` positions; new positions hold zero. An
    /// appended node spans `lowbit` *existing* positions, so it must be
    /// seeded with their sum — zero-filling would corrupt later prefixes.
    /// Channel ids mint monotonically, so growth is always an append.
    fn grow_to(&mut self, n: usize) {
        while self.tree.len() < n {
            let i = self.tree.len() + 1; // 1-based index of the new node
            let lowbit = i & i.wrapping_neg();
            let seed = self.prefix(i - 1) - self.prefix(i - lowbit);
            self.tree.push(seed);
        }
    }

    /// Adds `delta` to the value at 0-based position `pos`.
    fn add(&mut self, pos: usize, delta: isize) {
        let mut i = pos + 1;
        while i <= self.tree.len() {
            self.tree[i - 1] = (self.tree[i - 1] as isize + delta) as usize;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of the values at 0-based positions `0..n`.
    fn prefix(&self, n: usize) -> usize {
        let mut i = n.min(self.tree.len());
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i - 1];
            i &= i - 1;
        }
        sum
    }
}

/// Identifier of a delivery channel (one per connection endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(pub u32);

/// An unforgeable capability naming a channel with a rights mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capability(u64);

impl Capability {
    /// Constructs a capability from a raw value. Within the simulation
    /// capabilities are unforgeable because only the kernel mints them and
    /// validates every use; this constructor exists so adversarial tests
    /// can *attempt* forgery and verify it fails. Gated out of release
    /// builds: a production library must have no way to mint one.
    #[cfg(any(test, feature = "testing"))]
    pub fn forge_for_tests(raw: u64) -> Capability {
        Capability(raw)
    }
}

/// Rights a capability can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Right {
    /// May transmit packets matching the channel's template.
    Send,
    /// May consume packets from the channel's receive ring.
    Receive,
}

/// Errors from the transmit path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// Unknown or revoked capability.
    BadCapability,
    /// The capability lacks the Send right.
    NoSendRight,
    /// The packet header does not match the bound template.
    Template(TemplateViolation),
    /// The owning tenant exhausted its per-window transmit credit.
    QuotaExceeded,
}

/// Where an incoming frame was delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered to a channel's shared ring. `signal` is true if a
    /// semaphore notification must be posted (false when a previous
    /// notification is still pending — the batching path).
    Channel {
        /// Receiving channel.
        id: ChannelId,
        /// Whether to post the wakeup semaphore.
        signal: bool,
        /// Filter instructions the 1993 model charges for this decision:
        /// what a linear scan over the active bindings interprets before
        /// accepting (zero on the hardware path). Reported identically
        /// whether the host mechanism was the flow table or the scan, so
        /// the reproduced tables are invariant to the fast path.
        filter_instrs: usize,
        /// Which demultiplexing machinery decided the delivery.
        path: DemuxPath,
        /// Ring occupancy after the push — the live backlog a windowed
        /// sampler watches.
        depth: u32,
    },
    /// No binding matched: delivered to protected kernel memory (BQI 0 /
    /// kernel default queue) for the in-kernel protocols or the registry.
    KernelDefault {
        /// Filter instructions interpreted before falling through.
        filter_instrs: usize,
        /// Which demultiplexing machinery decided the miss.
        path: DemuxPath,
    },
    /// Dropped: the target ring or region was full.
    Dropped,
    /// Dropped by the owning tenant's exhausted ring-slot quota: the
    /// channel had room, the tenant's aggregate budget did not. Carries
    /// the tenant so the caller can charge the right account.
    QuotaDropped {
        /// The tenant whose quota caused the drop.
        tenant: OwnerTag,
    },
}

/// Per-tenant resource budget. A zero in any field means that dimension
/// is unlimited — the default, so single-tenant worlds and the existing
/// tests behave exactly as before budgets existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantBudget {
    /// Aggregate ring slots the tenant may occupy across *all* of its
    /// channels. A delivery that would exceed it is dropped and charged
    /// to the tenant (journaled as `quota_drop`), even when the target
    /// channel's own ring still has room.
    pub ring_slots: usize,
    /// Frames the tenant may transmit per credit window (see
    /// [`NetIoModule::set_tx_window`]); exhausted credit rejects with
    /// [`TxError::QuotaExceeded`] until the window rolls over.
    pub tx_credit: u64,
    /// Channels the tenant may hold open at once;
    /// [`NetIoModule::try_create_channel`] refuses past it.
    pub max_channels: usize,
}

/// A tenant's live accounting: its budget plus the running counters the
/// kernel charges against it. Reported via [`NetIoModule::tenant_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct TenantAccount {
    budget: TenantBudget,
    /// Ring slots currently occupied across all the tenant's channels.
    ring_occupancy: usize,
    /// Transmit credit consumed in the current window.
    tx_used: u64,
    /// Channels currently open.
    open_channels: usize,
    /// Cumulative frames delivered into the tenant's rings.
    rx_delivered: u64,
    /// Cumulative frames the tenant transmitted (accepted).
    tx_frames: u64,
    /// Cumulative receive drops charged to exhausted ring quota.
    quota_drops: u64,
    /// Cumulative transmits rejected for exhausted credit.
    tx_rejections: u64,
}

/// Snapshot of one tenant's budget accounting, for dashboards, the
/// metrics registry's `TenantScope` sync, and the isolation oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Frames delivered into the tenant's rings.
    pub rx_delivered: u64,
    /// Frames the tenant transmitted (accepted by the kernel).
    pub tx_frames: u64,
    /// Receive drops charged to the tenant's exhausted ring quota.
    pub quota_drops: u64,
    /// Transmits rejected for exhausted per-window credit.
    pub tx_rejections: u64,
    /// Ring slots currently occupied across the tenant's channels.
    pub ring_slots: usize,
    /// The tenant's aggregate ring-slot quota (0 = unlimited).
    pub ring_quota: usize,
    /// Channels the tenant currently holds open.
    pub open_channels: usize,
}

struct CapEntry {
    channel: ChannelId,
    right: Right,
}

struct Channel {
    owner: OwnerTag,
    /// Pinned-memory model: at most `capacity` frames of at most
    /// `slot_size` bytes may sit in the ring, exactly as if each occupied
    /// a slot of the channel's shared region.
    capacity: usize,
    slot_size: usize,
    rx_ring: VecDeque<Frame>,
    template: HeaderTemplate,
    demux: CompiledDemux,
    /// The demux tier the spec distilled into: exact 5-tuple, wildcard
    /// 3-tuple, or the residual scan (half-wildcards, mismatched link
    /// framing). Fixed at installation.
    slot: FlowSlot,
    /// Software demux only fires once the registry activates the binding
    /// at connection-establishment completion; until then, traffic for the
    /// endpoint still flows to the kernel default path (the registry).
    active: bool,
    /// True while a semaphore notification is posted but not yet consumed.
    notify_pending: bool,
    /// AN1: the ring id registered in the NIC's BQI table.
    ring_id: Option<RingId>,
    /// The raw values of the two capabilities minted for this channel, so
    /// teardown revokes exactly them instead of sweeping the whole
    /// capability map (an O(total caps) hidden churn term).
    cap_ids: [u64; 2],
    rx_delivered: u64,
    rx_batched: u64,
    /// Software deliveries this channel received via the flow table.
    flow_hits: u64,
    /// Software deliveries this channel received via the listen table.
    listen_hits: u64,
    /// Software deliveries that went through the filter scan instead.
    scan_fallbacks: u64,
}

/// Per-channel delivery and demultiplexing counters, reported by
/// [`NetIoModule::channel_stats`] and handed to the registry at teardown so
/// it can flag bindings that keep missing the flow-table fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Frames placed into the channel's ring.
    pub delivered: u64,
    /// Deliveries batched behind a pending notification (no fresh signal).
    pub batched: u64,
    /// Software deliveries decided by the exact-match flow table.
    pub flow_hits: u64,
    /// Software deliveries decided by the wildcard 3-tuple listen table.
    pub listen_hits: u64,
    /// Software deliveries decided by the filter scan.
    pub scan_fallbacks: u64,
}

/// Software-demultiplexing counters, reported by
/// [`NetIoModule::demux_stats`] for the `repro-tables` demux section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DemuxStats {
    /// Frames whose delivery was decided by the exact-match flow table.
    pub flow_hits: u64,
    /// Frames whose delivery was decided by the 3-tuple listen table.
    pub listen_hits: u64,
    /// Frames decided by the filter scan (half-wildcard bindings,
    /// fragments, non-IP frames, and kernel-default misses).
    pub scan_fallbacks: u64,
    /// Total frames through [`NetIoModule::deliver_software`].
    pub packets: u64,
    /// Total modeled filter instructions across those frames (what the
    /// 1993 scan interprets — the cost-model input).
    pub filter_instrs: u64,
}

impl DemuxStats {
    /// Modeled filter instructions per packet.
    pub fn avg_filter_instrs(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.filter_instrs as f64 / self.packets as f64
    }

    /// Fraction of software-demuxed frames the flow table decided.
    pub fn flow_hit_rate(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.flow_hits as f64 / self.packets as f64
    }

    /// Fraction decided by either keyed table (flow or listen) — the
    /// frames that skipped filter interpretation entirely.
    pub fn keyed_hit_rate(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        (self.flow_hits + self.listen_hits) as f64 / self.packets as f64
    }
}

/// The network I/O module for one device. See module docs.
///
/// Software demultiplexing is three-tiered. At channel installation each
/// [`DemuxSpec`] is *distilled*: fully-specified connection bindings (the
/// common case the registry installs at connection setup) become entries in
/// an exact-match flow table keyed by the frame's 5-tuple; fully-wildcard
/// bindings (listening sockets, unconnected UDP) become entries in a
/// 3-tuple listen table keyed by the frame's local projection. Either way
/// delivery is one [`FlowKey::extract`] parse plus hash lookups — O(1) in
/// the number of bindings. Only the residual — half-wildcard specs,
/// mismatched link framing, and frames with no keyed identity (fragments,
/// non-IP) — falls back to the paper-era filter scan. Correctness
/// invariant: the tiers always agree with a pure linear scan — a keyed hit
/// is only taken after any lower-id residual binding has had its filter
/// run (scan order is id order, first match wins), the cross-table winner
/// is the lower id (the tiers partition the channels), and a distilled
/// binding can never match a frame whose key differs from its own
/// (`DemuxSpec::distill`/`distill_listen`'s iff guarantees).
///
/// Tier maintenance is **incremental**: activation and teardown patch the
/// tables, the id order, and the scan-cost accounting in place (O(log n)
/// point updates on [`InstrFenwick`]) rather than rebuilding O(n) caches
/// per connection event, so churn stays flat into the 10⁵–10⁶-channel
/// range. [`NetIoModule::force_rebuild_active`] remains the from-scratch
/// oracle the incremental structures are validated against.
pub struct NetIoModule {
    channels: HashMap<u32, Channel>,
    caps: HashMap<u64, CapEntry>,
    ring_index: HashMap<RingId, ChannelId>,
    /// Exact-match tier: 5-tuple → ids of channels distilled to that key,
    /// ascending (duplicates possible; the scan-equivalent winner is the
    /// lowest *active* id).
    flow_table: HashMap<FlowKey, Vec<u32>>,
    /// Wildcard tier: 3-tuple → ids of fully-wildcard channels distilled
    /// to that key, ascending.
    listen_table: HashMap<ListenKey, Vec<u32>>,
    /// Link-header length the keyed tables extract keys with, fixed by the
    /// first distillable channel (one module serves one device, so all its
    /// channels share framing; a mismatched spec stays on the scan tier).
    flow_lhl: Option<usize>,
    /// All channel ids, ascending — the scan order, maintained on
    /// install/teardown instead of collected and sorted per packet.
    scan_order: Vec<u32>,
    /// Per-id active filter instruction counts as a Fenwick tree:
    /// `instr_fen.prefix(id + 1)` is the scan-equivalent cost through
    /// `id`, maintained by point updates on activation and teardown.
    instr_fen: InstrFenwick,
    /// Total filter instructions across all active channels — what a scan
    /// interprets on a miss — maintained incrementally.
    total_active_instrs: usize,
    /// Active channels on *neither* keyed table, ascending — the only
    /// filters a keyed decision must still consult.
    residual: BTreeSet<u32>,
    demux_stats: DemuxStats,
    /// Slow-consumer fault model, kept as a thin compat shim over the
    /// per-tenant quota path: when set, every ring behaves as if it had
    /// at most this many slots — a degenerate uniform per-ring clamp on
    /// the same effective-capacity check tenant quotas use. `None`
    /// restores the configured capacities.
    pressure_cap: Option<usize>,
    /// Per-tenant budgets and accounting, keyed by raw tenant id.
    /// `BTreeMap` so reports iterate deterministically. Absent tenants
    /// are unbudgeted (the kernel, `TenantId(0)`, is never budgeted).
    tenants: std::collections::BTreeMap<u64, TenantAccount>,
    /// Transmit-credit window length in sim nanoseconds.
    tx_window_ns: u64,
    /// Which credit window [`NetIoModule::advance_tx_window`] last saw.
    tx_epoch: u64,
    next_channel: u32,
    next_cap: u64,
    next_ring: u32,
    /// Frames that fell through to the kernel default path.
    pub default_deliveries: u64,
    /// Packets rejected by template checks (attempted impersonation or
    /// buggy library).
    pub tx_rejections: u64,
}

impl Default for NetIoModule {
    fn default() -> Self {
        Self::new()
    }
}

impl NetIoModule {
    /// Creates an empty module.
    pub fn new() -> NetIoModule {
        NetIoModule {
            channels: HashMap::new(),
            caps: HashMap::new(),
            ring_index: HashMap::new(),
            flow_table: HashMap::new(),
            listen_table: HashMap::new(),
            flow_lhl: None,
            scan_order: Vec::new(),
            instr_fen: InstrFenwick::default(),
            total_active_instrs: 0,
            residual: BTreeSet::new(),
            demux_stats: DemuxStats::default(),
            pressure_cap: None,
            tenants: std::collections::BTreeMap::new(),
            tx_window_ns: 10_000_000, // 10 ms of sim time per credit window
            tx_epoch: 0,
            next_channel: 0,
            next_cap: 0x6100_0000_0000_0000,
            next_ring: 1, // RingId(0) is the kernel default
            default_deliveries: 0,
            tx_rejections: 0,
        }
    }

    /// Creates a delivery channel on behalf of `owner` (only the registry
    /// server calls this — "initially, only the privileged registry server
    /// has access to the network module"). Returns the channel id, the
    /// send and receive capabilities for the application, and the ring id
    /// to register in a BQI table if the device supports hardware demux.
    ///
    /// `region_slots`/`slot_size` size the pinned shared memory; `spec`
    /// controls what the channel may receive and `template` what it may
    /// send.
    pub fn create_channel(
        &mut self,
        owner: OwnerTag,
        spec: &DemuxSpec,
        template: HeaderTemplate,
        region_slots: usize,
        slot_size: usize,
    ) -> (ChannelId, Capability, Capability, RingId) {
        self.try_create_channel(owner, spec, template, region_slots, slot_size)
            .expect("tenant channel cap exceeded — use try_create_channel for budgeted tenants")
    }

    /// [`create_channel`](Self::create_channel) that enforces the owning
    /// tenant's channel-count cap: returns `None` (and creates nothing)
    /// when the tenant is at its limit. Budget-aware callers (the
    /// registry's connection setup) use this so a tenant that hoards
    /// channels is refused instead of panicking the kernel.
    pub fn try_create_channel(
        &mut self,
        owner: OwnerTag,
        spec: &DemuxSpec,
        template: HeaderTemplate,
        region_slots: usize,
        slot_size: usize,
    ) -> Option<(ChannelId, Capability, Capability, RingId)> {
        if owner != OwnerTag(0) {
            let acct = self.tenants.entry(owner.0).or_default();
            if acct.budget.max_channels > 0 && acct.open_channels >= acct.budget.max_channels {
                return None;
            }
            acct.open_channels += 1;
        }
        let id = ChannelId(self.next_channel);
        self.next_channel += 1;
        let ring_id = RingId(self.next_ring);
        self.next_ring += 1;
        // Distill the spec into its keyed identity, if any. The first
        // distillable channel (either tier) pins the module's
        // key-extraction framing; later specs with different framing stay
        // on the scan tier. Ids are minted ascending, so pushing keeps
        // each table entry sorted.
        let slot = if let Some(key) = spec.distill() {
            if *self.flow_lhl.get_or_insert(spec.link_header_len) == spec.link_header_len {
                self.flow_table.entry(key).or_default().push(id.0);
                FlowSlot::Exact(key)
            } else {
                FlowSlot::Scan
            }
        } else if let Some(key) = spec.distill_listen() {
            if *self.flow_lhl.get_or_insert(spec.link_header_len) == spec.link_header_len {
                self.listen_table.entry(key).or_default().push(id.0);
                FlowSlot::Listen(key)
            } else {
                FlowSlot::Scan
            }
        } else {
            FlowSlot::Scan
        };
        let send = self.issue_cap(id, Right::Send);
        let recv = self.issue_cap(id, Right::Receive);
        let ch = Channel {
            owner,
            capacity: region_slots,
            slot_size,
            rx_ring: VecDeque::with_capacity(region_slots),
            template,
            demux: CompiledDemux::from_spec(spec),
            slot,
            active: false,
            notify_pending: false,
            ring_id: Some(ring_id),
            cap_ids: [send.0, recv.0],
            rx_delivered: 0,
            rx_batched: 0,
            flow_hits: 0,
            listen_hits: 0,
            scan_fallbacks: 0,
        };
        self.channels.insert(id.0, ch);
        self.scan_order.push(id.0); // ascending mint order = scan order
        self.instr_fen.grow_to(self.next_channel as usize);
        self.ring_index.insert(ring_id, id);
        Some((id, send, recv, ring_id))
    }

    /// Computes the incremental demux caches — the per-id instruction
    /// Fenwick, the active-instruction total, and the residual scan set —
    /// from scratch. This is the oracle the per-event maintenance in
    /// [`NetIoModule::activate`] and [`NetIoModule::destroy_channel`] is
    /// validated against.
    fn compute_caches(&self) -> (InstrFenwick, usize, BTreeSet<u32>) {
        let mut fen = InstrFenwick::default();
        fen.grow_to(self.next_channel as usize);
        let mut total = 0usize;
        let mut residual = BTreeSet::new();
        for &id in &self.scan_order {
            let ch = &self.channels[&id];
            if !ch.active {
                continue;
            }
            let n = ch.demux.instruction_count();
            fen.add(id as usize, n as isize);
            total += n;
            if ch.slot == FlowSlot::Scan {
                residual.insert(id);
            }
        }
        (fen, total, residual)
    }

    /// Replaces the incremental caches with a from-scratch rebuild.
    fn rebuild_active(&mut self) {
        let (fen, total, residual) = self.compute_caches();
        self.instr_fen = fen;
        self.total_active_instrs = total;
        self.residual = residual;
    }

    /// Oracle hook: rebuilds the demux caches from scratch, as every
    /// activation and teardown did before maintenance went incremental.
    /// Benchmarks time it to report what a churn event used to cost; tests
    /// call it to confirm the incremental state matches a fresh build.
    pub fn force_rebuild_active(&mut self) {
        self.rebuild_active();
    }

    /// True when the incrementally-maintained caches equal a from-scratch
    /// rebuild — the invariant [`NetIoModule::activate`] and
    /// [`NetIoModule::destroy_channel`] preserve. Exposed for the
    /// differential tests; debug builds also assert it after each churn
    /// event on small populations.
    pub fn caches_match_rebuild(&self) -> bool {
        let (fen, total, residual) = self.compute_caches();
        fen == self.instr_fen && total == self.total_active_instrs && residual == self.residual
    }

    /// Debug-build churn validation. Capped to small populations because
    /// the check is O(n) and would turn property-test churn quadratic.
    #[cfg(debug_assertions)]
    fn debug_validate_caches(&self) {
        if self.channels.len() <= 64 {
            debug_assert!(
                self.caches_match_rebuild(),
                "incremental demux caches diverged from a fresh rebuild"
            );
        }
    }

    #[cfg(not(debug_assertions))]
    fn debug_validate_caches(&self) {}

    /// The filter instructions a linear scan interprets before `id`
    /// accepts: every earlier active binding's full program plus `id`'s.
    fn scan_equiv_instrs(&self, id: u32) -> usize {
        self.instr_fen.prefix(id as usize + 1)
    }

    fn issue_cap(&mut self, channel: ChannelId, right: Right) -> Capability {
        let cap = Capability(self.next_cap);
        self.next_cap += 0x9E37_79B9; // sparse, non-guessable-looking ids
        self.caps.insert(cap.0, CapEntry { channel, right });
        cap
    }

    /// Destroys a channel and revokes its capabilities. Only the owner (or
    /// the kernel, `OwnerTag(0)`) may do so.
    pub fn destroy_channel(&mut self, id: ChannelId, requester: OwnerTag) -> bool {
        let Some(ch) = self.channels.get(&id.0) else {
            return false;
        };
        if ch.owner != requester && requester != OwnerTag(0) {
            return false;
        }
        if let Some(ring) = ch.ring_id {
            self.ring_index.remove(&ring);
        }
        // Table entries hold ascending ids: binary-search remove, and drop
        // the entry when its last binding goes.
        match ch.slot {
            FlowSlot::Exact(key) => {
                if let Some(ids) = self.flow_table.get_mut(&key) {
                    if let Ok(pos) = ids.binary_search(&id.0) {
                        ids.remove(pos);
                    }
                    if ids.is_empty() {
                        self.flow_table.remove(&key);
                    }
                }
            }
            FlowSlot::Listen(key) => {
                if let Some(ids) = self.listen_table.get_mut(&key) {
                    if let Ok(pos) = ids.binary_search(&id.0) {
                        ids.remove(pos);
                    }
                    if ids.is_empty() {
                        self.listen_table.remove(&key);
                    }
                }
            }
            FlowSlot::Scan => {}
        }
        let ch = self.channels.remove(&id.0).expect("checked above");
        // Release the tenant's budget: the channel slot and whatever ring
        // occupancy its unconsumed frames still held.
        if let Some(acct) = self.tenants.get_mut(&ch.owner.0) {
            acct.open_channels = acct.open_channels.saturating_sub(1);
            acct.ring_occupancy = acct.ring_occupancy.saturating_sub(ch.rx_ring.len());
        }
        if ch.active {
            // Incremental cache maintenance: undo this channel's
            // contribution instead of rebuilding everything.
            let n = ch.demux.instruction_count();
            self.instr_fen.add(id.0 as usize, -(n as isize));
            self.total_active_instrs -= n;
            self.residual.remove(&id.0);
        }
        // `scan_order` is ascending, so the O(n) retain sweep is a
        // binary-search remove.
        if let Ok(pos) = self.scan_order.binary_search(&id.0) {
            self.scan_order.remove(pos);
        }
        // Revoke exactly this channel's two capabilities — not a sweep of
        // the whole capability map.
        for cap in ch.cap_ids {
            self.caps.remove(&cap);
        }
        self.debug_validate_caches();
        true
    }

    /// Destroys every channel owned by `owner` — the kernel's backstop
    /// sweep after a process death. Returns the reclaimed channel ids and
    /// their ring ids (ascending), so the caller can release any BQI
    /// bindings and journal each reclamation.
    pub fn reclaim_owner(&mut self, owner: OwnerTag) -> Vec<(ChannelId, Option<RingId>)> {
        let mut doomed: Vec<(ChannelId, Option<RingId>)> = self
            .channels
            .iter()
            .filter(|(_, ch)| ch.owner == owner)
            .map(|(&id, ch)| (ChannelId(id), ch.ring_id))
            .collect();
        doomed.sort_by_key(|(id, _)| id.0);
        for &(id, _) in &doomed {
            self.destroy_channel(id, OwnerTag(0));
        }
        doomed
    }

    /// Sets (or clears) the slow-consumer ring pressure cap — the compat
    /// shim the `FaultPlan::RingPressure` schedules drive. It rides the
    /// same effective-capacity check as the per-tenant ring quotas, as a
    /// uniform per-ring clamp; `Some(0)` sheds everything.
    pub fn set_pressure_cap(&mut self, cap: Option<usize>) {
        self.pressure_cap = cap;
    }

    /// Installs (or replaces) `tenant`'s resource budget. Zero fields are
    /// unlimited; the kernel tenant (`TenantId(0)`) cannot be budgeted.
    pub fn set_tenant_budget(&mut self, tenant: OwnerTag, budget: TenantBudget) {
        if tenant == OwnerTag(0) {
            return;
        }
        self.tenants.entry(tenant.0).or_default().budget = budget;
    }

    /// Sets the transmit-credit window length (sim nanoseconds). Credit
    /// windows are epoch-aligned (`now / window`), so identical runs see
    /// identical refill instants regardless of call timing.
    pub fn set_tx_window(&mut self, window_ns: u64) {
        assert!(window_ns > 0, "tx window must be positive");
        self.tx_window_ns = window_ns;
    }

    /// Rolls transmit-credit windows forward to `now`: when the clock
    /// crosses into a new epoch-aligned window, every tenant's used
    /// credit resets. The world calls this before handing frames to
    /// [`NetIoModule::transmit`]; the kernel itself keeps no clock.
    pub fn advance_tx_window(&mut self, now: u64) {
        let epoch = now / self.tx_window_ns;
        if epoch != self.tx_epoch {
            self.tx_epoch = epoch;
            for acct in self.tenants.values_mut() {
                acct.tx_used = 0;
            }
        }
    }

    /// One tenant's budget accounting, or `None` if the kernel has never
    /// seen the tenant.
    pub fn tenant_stats(&self, tenant: OwnerTag) -> Option<TenantStats> {
        self.tenants.get(&tenant.0).map(|acct| TenantStats {
            rx_delivered: acct.rx_delivered,
            tx_frames: acct.tx_frames,
            quota_drops: acct.quota_drops,
            tx_rejections: acct.tx_rejections,
            ring_slots: acct.ring_occupancy,
            ring_quota: acct.budget.ring_slots,
            open_channels: acct.open_channels,
        })
    }

    /// Every tenant the kernel has accounting for, ascending by raw id.
    pub fn tenant_ids(&self) -> Vec<OwnerTag> {
        self.tenants.keys().map(|&t| OwnerTag(t)).collect()
    }

    /// Number of live channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The tenant that owns a live channel, or `None` if the id is dead.
    pub fn channel_owner(&self, id: ChannelId) -> Option<OwnerTag> {
        self.channels.get(&id.0).map(|ch| ch.owner)
    }

    /// Validates an outgoing frame against the template bound to `cap`.
    /// On success the caller hands the frame to the device.
    pub fn transmit(&mut self, cap: Capability, frame: &[u8]) -> Result<ChannelId, TxError> {
        self.transmit_tagged(cap, frame, None)
    }

    /// [`transmit`](Self::transmit) for a pooled [`Frame`]: identical
    /// checks, but the journaled template-check verdict carries the frame
    /// id so the causal tracer can join it into the frame's journey.
    pub fn transmit_frame(&mut self, cap: Capability, frame: &Frame) -> Result<ChannelId, TxError> {
        self.transmit_tagged(cap, frame, Some(frame.id()))
    }

    fn transmit_tagged(
        &mut self,
        cap: Capability,
        frame: &[u8],
        frame_id: Option<u64>,
    ) -> Result<ChannelId, TxError> {
        let entry = self.caps.get(&cap.0).ok_or(TxError::BadCapability)?;
        if entry.right != Right::Send {
            return Err(TxError::NoSendRight);
        }
        let ch = self
            .channels
            .get(&entry.channel.0)
            .ok_or(TxError::BadCapability)?;
        let channel = entry.channel;
        // Per-window transmit credit, charged before the template runs:
        // the credit bounds how often a tenant may invoke the transmit
        // path at all, so a flood of *valid* frames and a storm of
        // template violations are both rate-limited.
        let owner = ch.owner;
        if let Some(acct) = self.tenants.get_mut(&owner.0) {
            if acct.budget.tx_credit > 0 {
                if acct.tx_used >= acct.budget.tx_credit {
                    acct.tx_rejections += 1;
                    return Err(TxError::QuotaExceeded);
                }
                acct.tx_used += 1;
            }
        }
        let ch = &self.channels[&channel.0];
        match ch.template.check(frame) {
            Ok(()) => {
                if let Some(acct) = self.tenants.get_mut(&owner.0) {
                    acct.tx_frames += 1;
                }
                unp_trace::emit(frame_id, || unp_trace::Event::TxTemplateCheck {
                    channel: channel.0,
                    ok: true,
                });
                Ok(channel)
            }
            Err(v) => {
                self.tx_rejections += 1;
                unp_trace::emit(frame_id, || unp_trace::Event::TxTemplateCheck {
                    channel: channel.0,
                    ok: false,
                });
                Err(TxError::Template(v))
            }
        }
    }

    /// Classifies a frame the way [`NetIoModule::deliver_software`] will,
    /// without delivering: `(target, filter_instrs, path)` where
    /// `filter_instrs` is the scan-equivalent modeled cost. Exposed so the
    /// differential tests and benchmarks can exercise the decision alone.
    pub fn classify(&self, frame: &[u8]) -> (Option<ChannelId>, usize, DemuxPath) {
        // Keyed tiers: one 5-tuple parse serves both tables (the listen
        // key is its local projection). Per table the winner is the lowest
        // active id distilled to the frame's key (ties between duplicate
        // bindings resolve exactly as the scan would); across tables the
        // candidate is the lower of the two — each channel lives in
        // exactly one tier, so that is the scan's first keyed match.
        let key = self.flow_lhl.and_then(|lhl| FlowKey::extract(frame, lhl));
        let lowest_active =
            |ids: &Vec<u32>| ids.iter().copied().find(|id| self.channels[id].active);
        let flow_hit: Option<u32> = key
            .and_then(|k| self.flow_table.get(&k))
            .and_then(lowest_active);
        let listen_hit: Option<u32> = key
            .and_then(|k| self.listen_table.get(&k.local()))
            .and_then(lowest_active);
        let (candidate, keyed_path) = match (flow_hit, listen_hit) {
            (Some(f), Some(l)) if l < f => (Some(l), DemuxPath::ListenTable),
            (Some(f), _) => (Some(f), DemuxPath::FlowTable),
            (None, Some(l)) => (Some(l), DemuxPath::ListenTable),
            (None, None) => (None, DemuxPath::FilterScan),
        };
        // Residual tier: a lower-id unkeyed binding shadows the keyed hit
        // (the scan runs filters in id order and first match wins), so
        // those — and only those — filters must still run. On a keyed
        // miss no distilled binding can match (the distill/extract iff
        // guarantees), so the scan reduces to the residual subset.
        let limit = candidate.unwrap_or(u32::MAX);
        for &id in self.residual.range(..limit) {
            if self.channels[&id].demux.matches(frame) {
                return (
                    Some(ChannelId(id)),
                    self.scan_equiv_instrs(id),
                    DemuxPath::FilterScan,
                );
            }
        }
        match candidate {
            Some(id) => (Some(ChannelId(id)), self.scan_equiv_instrs(id), keyed_path),
            None => (None, self.total_active_instrs, DemuxPath::FilterScan),
        }
    }

    /// Reference software demultiplexer: the pure linear scan, running
    /// every active channel's filter in id order until one accepts.
    /// `(target, filter_instrs)`. The property tests assert
    /// [`NetIoModule::classify`] agrees with this on both fields for
    /// arbitrary frames and channel sets; the benchmarks measure what the
    /// flow table saves over it.
    pub fn classify_scan_reference(&self, frame: &[u8]) -> (Option<ChannelId>, usize) {
        let mut instrs = 0;
        for &id in &self.scan_order {
            let ch = &self.channels[&id];
            if !ch.active {
                continue;
            }
            instrs += ch.demux.instruction_count();
            if ch.demux.matches(frame) {
                return (Some(ChannelId(id)), instrs);
            }
        }
        (None, instrs)
    }

    /// Software demultiplexing (Ethernet path): decides the receiving
    /// channel — flow table for exact-match bindings, filter scan for the
    /// rest — then places a handle to the frame in that channel's ring.
    pub fn deliver_software(&mut self, frame: &Frame) -> Delivery {
        let (target, instrs, path) = self.classify(frame);
        self.demux_stats.packets += 1;
        self.demux_stats.filter_instrs += instrs as u64;
        match path {
            DemuxPath::FlowTable => self.demux_stats.flow_hits += 1,
            DemuxPath::ListenTable => self.demux_stats.listen_hits += 1,
            _ => self.demux_stats.scan_fallbacks += 1,
        }
        unp_trace::emit(Some(frame.id()), || unp_trace::Event::DemuxClassify {
            path: path_kind(path),
            filter_instrs: instrs as u32,
            matched: target.is_some(),
        });
        match target {
            Some(id) => self.place(id, frame, instrs, path),
            None => {
                self.default_deliveries += 1;
                Delivery::KernelDefault {
                    filter_instrs: instrs,
                    path,
                }
            }
        }
    }

    /// Hardware demultiplexing (AN1 path): the NIC already classified the
    /// frame to `ring` via its BQI table; place it directly.
    pub fn deliver_hardware(&mut self, ring: RingId, frame: &Frame) -> Delivery {
        let target = self.ring_index.get(&ring).copied();
        unp_trace::emit(Some(frame.id()), || unp_trace::Event::DemuxClassify {
            path: unp_trace::PathKind::Hardware,
            filter_instrs: 0,
            matched: target.is_some(),
        });
        match target {
            Some(id) => self.place(id, frame, 0, DemuxPath::Hardware),
            None => {
                self.default_deliveries += 1;
                Delivery::KernelDefault {
                    filter_instrs: 0,
                    path: DemuxPath::Hardware,
                }
            }
        }
    }

    fn place(
        &mut self,
        id: ChannelId,
        frame: &Frame,
        filter_instrs: usize,
        path: DemuxPath,
    ) -> Delivery {
        let pressure = self.pressure_cap;
        let ch = self
            .channels
            .get_mut(&id.0)
            .expect("placed to live channel");
        // Same backpressure as the shared-region model: an oversize packet
        // doesn't fit a slot, a full ring means the region is exhausted.
        // The pressure shim is a uniform clamp on the effective capacity.
        let capacity = pressure.map_or(ch.capacity, |c| ch.capacity.min(c));
        if frame.len() > ch.slot_size || ch.rx_ring.len() >= capacity {
            // A pressure-induced drop is one the uncapped ring would have
            // absorbed: the injected clamp, not load, is the cause.
            let shed = frame.len() <= ch.slot_size && ch.rx_ring.len() < ch.capacity;
            unp_trace::emit(Some(frame.id()), || unp_trace::Event::RingDrop {
                channel: id.0,
                pressure: shed,
            });
            return Delivery::Dropped;
        }
        // Tenant ring quota: the channel has room, but the owner may have
        // exhausted its aggregate slot budget across all its channels —
        // then the drop is charged to the *tenant*, not the channel, and
        // journaled distinctly so the causal trace can attribute it.
        let owner = ch.owner;
        if let Some(acct) = self.tenants.get_mut(&owner.0) {
            if acct.budget.ring_slots > 0 && acct.ring_occupancy >= acct.budget.ring_slots {
                acct.quota_drops += 1;
                let in_use = acct.ring_occupancy as u64;
                let quota = acct.budget.ring_slots as u64;
                unp_trace::emit(Some(frame.id()), || unp_trace::Event::QuotaDrop {
                    channel: id.0,
                    tenant: owner.0,
                    in_use,
                    quota,
                });
                return Delivery::QuotaDropped { tenant: owner };
            }
            acct.ring_occupancy += 1;
            acct.rx_delivered += 1;
        }
        let ch = self
            .channels
            .get_mut(&id.0)
            .expect("placed to live channel");
        ch.rx_ring.push_back(frame.clone());
        ch.rx_delivered += 1;
        match path {
            DemuxPath::FlowTable => ch.flow_hits += 1,
            DemuxPath::ListenTable => ch.listen_hits += 1,
            DemuxPath::FilterScan => ch.scan_fallbacks += 1,
            DemuxPath::Hardware => {}
        }
        let signal = !ch.notify_pending;
        if signal {
            ch.notify_pending = true;
        } else {
            ch.rx_batched += 1;
        }
        let depth = ch.rx_ring.len() as u32;
        unp_trace::emit(Some(frame.id()), || unp_trace::Event::RingEnqueue {
            channel: id.0,
            depth,
            signal,
        });
        Delivery::Channel {
            id,
            signal,
            filter_instrs,
            path,
            depth,
        }
    }

    /// The library side: consume every queued packet for `cap` and clear
    /// the notification flag (single-shot read).
    pub fn consume(&mut self, cap: Capability) -> Result<Vec<Frame>, TxError> {
        let out = self.consume_batch(cap)?;
        let _ = self.end_wakeup(cap)?;
        Ok(out)
    }

    /// Drains the ring *without* clearing the notification flag: the
    /// library thread is awake and processing, so packets arriving in the
    /// meantime must not post fresh semaphore signals — this is the
    /// batching the paper relies on ("batch multiple network packets per
    /// semaphore notification in order to amortize the cost of
    /// signaling"). Pair with [`NetIoModule::end_wakeup`].
    pub fn consume_batch(&mut self, cap: Capability) -> Result<Vec<Frame>, TxError> {
        let entry = self.caps.get(&cap.0).ok_or(TxError::BadCapability)?;
        if entry.right != Right::Receive {
            return Err(TxError::NoSendRight);
        }
        let channel = entry.channel;
        let ch = self
            .channels
            .get_mut(&channel.0)
            .ok_or(TxError::BadCapability)?;
        let frames: Vec<Frame> = ch.rx_ring.drain(..).collect();
        // Consuming returns the slots to the tenant's ring budget.
        let owner = ch.owner;
        if let Some(acct) = self.tenants.get_mut(&owner.0) {
            acct.ring_occupancy = acct.ring_occupancy.saturating_sub(frames.len());
        }
        unp_trace::emit(None, || unp_trace::Event::WakeupBatch {
            channel: channel.0,
            frames: frames.len() as u32,
        });
        Ok(frames)
    }

    /// Ends a wakeup: if the ring is empty the notification flag clears
    /// (the thread blocks on the semaphore again) and `true` is returned;
    /// if packets arrived during processing the flag stays set and `false`
    /// tells the library to loop and consume again.
    pub fn end_wakeup(&mut self, cap: Capability) -> Result<bool, TxError> {
        let entry = self.caps.get(&cap.0).ok_or(TxError::BadCapability)?;
        if entry.right != Right::Receive {
            return Err(TxError::NoSendRight);
        }
        let ch = self
            .channels
            .get_mut(&entry.channel.0)
            .ok_or(TxError::BadCapability)?;
        if ch.rx_ring.is_empty() {
            ch.notify_pending = false;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Activates a channel's receive binding ("the registry server
    /// activates the address demultiplexing mechanism as part of the
    /// connection establishment phase").
    pub fn activate(&mut self, id: ChannelId) -> bool {
        let Some(ch) = self.channels.get_mut(&id.0) else {
            return false;
        };
        if !ch.active {
            ch.active = true;
            // Incremental cache maintenance: point-add this channel's
            // contribution instead of rebuilding everything.
            let n = ch.demux.instruction_count();
            let on_scan_tier = ch.slot == FlowSlot::Scan;
            self.instr_fen.add(id.0 as usize, n as isize);
            self.total_active_instrs += n;
            if on_scan_tier {
                self.residual.insert(id.0);
            }
        }
        self.debug_validate_caches();
        true
    }

    /// Pins the AN1 BQI the channel's template requires on outgoing
    /// packets, once the peer's announcement arrives during setup.
    pub fn set_template_bqi(&mut self, id: ChannelId, bqi: u16) -> bool {
        match self.channels.get_mut(&id.0) {
            Some(ch) => {
                ch.template.bqi = Some(bqi);
                true
            }
            None => false,
        }
    }

    /// Per-channel delivery/demux counters, or `None` for a dead channel.
    pub fn channel_stats(&self, id: ChannelId) -> Option<ChannelStats> {
        self.channels.get(&id.0).map(|ch| ChannelStats {
            delivered: ch.rx_delivered,
            batched: ch.rx_batched,
            flow_hits: ch.flow_hits,
            listen_hits: ch.listen_hits,
            scan_fallbacks: ch.scan_fallbacks,
        })
    }

    /// Software-demultiplexing counters since construction.
    pub fn demux_stats(&self) -> DemuxStats {
        self.demux_stats
    }

    /// Number of live flow-table entries (exact-match distilled bindings).
    pub fn flow_table_len(&self) -> usize {
        self.flow_table.values().map(Vec::len).sum()
    }

    /// Number of live listen-table entries (wildcard distilled bindings).
    pub fn listen_table_len(&self) -> usize {
        self.listen_table.values().map(Vec::len).sum()
    }

    /// Approximate heap footprint, in bytes, of the demultiplexing
    /// maintenance structures: both keyed tables, the scan order, the
    /// instruction Fenwick, and the residual set. Channel state itself
    /// (rings, templates, filters) is excluded — it exists under any demux
    /// strategy; this is the price of the *fast path*, which the scale
    /// sweep reports per channel count.
    pub fn demux_mem_bytes(&self) -> usize {
        use std::mem::size_of;
        let flow_buckets =
            self.flow_table.capacity() * (size_of::<FlowKey>() + size_of::<Vec<u32>>());
        let flow_ids: usize = self
            .flow_table
            .values()
            .map(|v| v.capacity() * size_of::<u32>())
            .sum();
        let listen_buckets =
            self.listen_table.capacity() * (size_of::<ListenKey>() + size_of::<Vec<u32>>());
        let listen_ids: usize = self
            .listen_table
            .values()
            .map(|v| v.capacity() * size_of::<u32>())
            .sum();
        // BTreeSet nodes carry roughly two words of overhead per element
        // at our sizes; close enough for a footprint column.
        let residual = self.residual.len() * (size_of::<u32>() + 2 * size_of::<usize>());
        flow_buckets
            + flow_ids
            + listen_buckets
            + listen_ids
            + self.scan_order.capacity() * size_of::<u32>()
            + self.instr_fen.tree.capacity() * size_of::<usize>()
            + residual
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unp_wire::{
        EtherType, EthernetRepr, IpProtocol, Ipv4Addr, Ipv4Repr, MacAddr, SeqNum, TcpFlags, TcpRepr,
    };

    const US: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const THEM: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const OUR_MAC_IDX: u32 = 2;
    const THEIR_MAC_IDX: u32 = 1;

    fn spec() -> DemuxSpec {
        DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Tcp,
            local_ip: US,
            local_port: 80,
            remote_ip: Some(THEM),
            remote_port: Some(5000),
        }
    }

    fn template() -> HeaderTemplate {
        HeaderTemplate {
            link_header_len: 14,
            src_mac: Some(MacAddr::from_host_index(OUR_MAC_IDX)),
            dst_mac: None,
            ethertype: EtherType::Ipv4,
            protocol: IpProtocol::Tcp,
            src_ip: US,
            dst_ip: THEM,
            src_port: 80,
            dst_port: Some(5000),
            bqi: None,
        }
    }

    fn tcp_frame(src_ip: Ipv4Addr, dst_ip: Ipv4Addr, sport: u16, dport: u16) -> Frame {
        let t = TcpRepr {
            src_port: sport,
            dst_port: dport,
            seq: SeqNum(1),
            ack_num: SeqNum(0),
            flags: TcpFlags::ack(),
            window: 1000,
            mss: None,
        };
        let seg = t.build_segment(src_ip, dst_ip, b"d");
        let ip = Ipv4Repr::simple(src_ip, dst_ip, IpProtocol::Tcp, seg.len());
        Frame::from_vec(
            EthernetRepr {
                dst: MacAddr::from_host_index(if dst_ip == US {
                    OUR_MAC_IDX
                } else {
                    THEIR_MAC_IDX
                }),
                src: MacAddr::from_host_index(if src_ip == US {
                    OUR_MAC_IDX
                } else {
                    THEIR_MAC_IDX
                }),
                ethertype: EtherType::Ipv4,
            }
            .build_frame(&ip.build_packet(&seg)),
        )
    }

    #[test]
    fn channel_delivery_and_consume_roundtrip() {
        let mut m = NetIoModule::new();
        let (id, _send, recv, _ring) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        // Until activation, traffic falls through to the kernel default.
        let frame = tcp_frame(THEM, US, 5000, 80);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::KernelDefault { .. }
        ));
        m.activate(id);
        let d = m.deliver_software(&frame);
        match d {
            Delivery::Channel {
                id: did,
                signal,
                filter_instrs,
                ..
            } => {
                assert_eq!(did, id);
                assert!(signal, "first packet posts the semaphore");
                assert!(filter_instrs > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let pkts = m.consume(recv).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0], frame);
    }

    #[test]
    fn notification_batching() {
        let mut m = NetIoModule::new();
        let (id, _send, recv, _) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(id);
        let frame = tcp_frame(THEM, US, 5000, 80);
        let signals: Vec<bool> = (0..4)
            .map(|_| match m.deliver_software(&frame) {
                Delivery::Channel { signal, .. } => signal,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(signals, vec![true, false, false, false], "batched");
        let pkts = m.consume(recv).unwrap();
        assert_eq!(pkts.len(), 4);
        let stats = m.channel_stats(id).unwrap();
        assert_eq!((stats.delivered, stats.batched), (4, 3));
        assert_eq!(
            stats.flow_hits + stats.listen_hits + stats.scan_fallbacks,
            4,
            "every software delivery is attributed to a demux tier"
        );
        // After consuming, the next packet signals again.
        match m.deliver_software(&frame) {
            Delivery::Channel { signal, .. } => assert!(signal),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unmatched_traffic_goes_to_kernel_default() {
        let mut m = NetIoModule::new();
        let (id, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(id);
        // Wrong port: no channel matches.
        let frame = tcp_frame(THEM, US, 5000, 81);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::KernelDefault { .. }
        ));
        assert_eq!(m.default_deliveries, 1);
    }

    #[test]
    fn transmit_requires_valid_capability_and_template() {
        let mut m = NetIoModule::new();
        let (_, send, recv, _) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        let good = tcp_frame(US, THEM, 80, 5000);
        assert!(m.transmit(send, &good).is_ok());
        // Receive capability has no send right.
        assert_eq!(m.transmit(recv, &good).err(), Some(TxError::NoSendRight));
        // Forged capability.
        assert_eq!(
            m.transmit(Capability(0xdead_beef), &good).err(),
            Some(TxError::BadCapability)
        );
    }

    #[test]
    fn impersonation_rejected_by_template() {
        let mut m = NetIoModule::new();
        let (_, send, _, _) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        // Spoofed source IP.
        let spoofed_ip = tcp_frame(Ipv4Addr::new(10, 0, 0, 9), THEM, 80, 5000);
        assert!(matches!(
            m.transmit(send, &spoofed_ip),
            Err(TxError::Template(_))
        ));
        // Wrong source port (stealing another connection's identity).
        let spoofed_port = tcp_frame(US, THEM, 81, 5000);
        assert!(matches!(
            m.transmit(send, &spoofed_port),
            Err(TxError::Template(_))
        ));
        assert_eq!(m.tx_rejections, 2);
    }

    #[test]
    fn hardware_path_places_by_ring() {
        let mut m = NetIoModule::new();
        let (id, _, _, ring) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        let frame = tcp_frame(THEM, US, 5000, 80);
        match m.deliver_hardware(ring, &frame) {
            Delivery::Channel {
                id: did,
                filter_instrs,
                ..
            } => {
                assert_eq!(did, id);
                assert_eq!(filter_instrs, 0, "no software filtering on AN1");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown ring → kernel default.
        assert!(matches!(
            m.deliver_hardware(RingId(999), &frame),
            Delivery::KernelDefault { .. }
        ));
    }

    #[test]
    fn ring_overflow_drops() {
        let mut m = NetIoModule::new();
        let (id, _, _, _) = m.create_channel(OwnerTag(1), &spec(), template(), 2, 2048);
        m.activate(id);
        let frame = tcp_frame(THEM, US, 5000, 80);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { .. }
        ));
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { .. }
        ));
        assert_eq!(m.deliver_software(&frame), Delivery::Dropped);
    }

    #[test]
    fn tenant_ring_quota_drops_with_attribution() {
        let mut m = NetIoModule::new();
        let (id, _, recv, _) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(id);
        m.set_tenant_budget(
            OwnerTag(1),
            TenantBudget {
                ring_slots: 3,
                ..TenantBudget::default()
            },
        );
        let frame = tcp_frame(THEM, US, 5000, 80);
        for _ in 0..3 {
            assert!(matches!(
                m.deliver_software(&frame),
                Delivery::Channel { .. }
            ));
        }
        // Ring has 8 slots free, but the tenant's quota is exhausted — and
        // the drop is attributed to the tenant, not the ring.
        assert_eq!(
            m.deliver_software(&frame),
            Delivery::QuotaDropped {
                tenant: OwnerTag(1)
            }
        );
        let s = m.tenant_stats(OwnerTag(1)).unwrap();
        assert_eq!((s.quota_drops, s.ring_slots, s.rx_delivered), (1, 3, 3));
        // Consuming releases the occupancy and delivery resumes.
        assert_eq!(m.consume_batch(recv).unwrap().len(), 3);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { .. }
        ));
        assert_eq!(m.tenant_stats(OwnerTag(1)).unwrap().ring_slots, 1);
    }

    #[test]
    fn tenant_tx_credit_refills_on_epoch_boundary() {
        let mut m = NetIoModule::new();
        let (_, send, _, _) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.set_tenant_budget(
            OwnerTag(1),
            TenantBudget {
                tx_credit: 2,
                ..TenantBudget::default()
            },
        );
        m.set_tx_window(1_000_000);
        let good = tcp_frame(US, THEM, 80, 5000);
        assert!(m.transmit(send, &good).is_ok());
        assert!(m.transmit(send, &good).is_ok());
        assert_eq!(m.transmit(send, &good).err(), Some(TxError::QuotaExceeded));
        assert_eq!(m.tenant_stats(OwnerTag(1)).unwrap().tx_rejections, 1);
        // Same epoch: still dry.
        m.advance_tx_window(999_999);
        assert_eq!(m.transmit(send, &good).err(), Some(TxError::QuotaExceeded));
        // Next epoch-aligned window: credit refills.
        m.advance_tx_window(1_000_000);
        assert!(m.transmit(send, &good).is_ok());
        assert_eq!(m.tenant_stats(OwnerTag(1)).unwrap().tx_frames, 3);
    }

    #[test]
    fn tenant_channel_cap_bounds_creation_and_destroy_releases() {
        let mut m = NetIoModule::new();
        m.set_tenant_budget(
            OwnerTag(1),
            TenantBudget {
                max_channels: 1,
                ..TenantBudget::default()
            },
        );
        let (id, ..) = m
            .try_create_channel(OwnerTag(1), &spec(), template(), 8, 2048)
            .expect("first channel within cap");
        assert!(
            m.try_create_channel(OwnerTag(1), &wildcard_spec(81), template(), 8, 2048)
                .is_none(),
            "second channel exceeds cap"
        );
        // Other tenants are not affected by tenant 1's cap.
        assert!(m
            .try_create_channel(OwnerTag(2), &wildcard_spec(82), template(), 8, 2048)
            .is_some());
        assert!(m.destroy_channel(id, OwnerTag(1)));
        assert!(m
            .try_create_channel(OwnerTag(1), &wildcard_spec(83), template(), 8, 2048)
            .is_some());
    }

    #[test]
    fn destroying_a_channel_releases_its_ring_occupancy() {
        let mut m = NetIoModule::new();
        let (id, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(id);
        let frame = tcp_frame(THEM, US, 5000, 80);
        for _ in 0..2 {
            assert!(matches!(
                m.deliver_software(&frame),
                Delivery::Channel { .. }
            ));
        }
        assert_eq!(m.tenant_stats(OwnerTag(1)).unwrap().ring_slots, 2);
        assert!(m.destroy_channel(id, OwnerTag(1)));
        let s = m.tenant_stats(OwnerTag(1)).unwrap();
        assert_eq!((s.ring_slots, s.open_channels), (0, 0));
    }

    #[test]
    fn kernel_tenant_cannot_be_budgeted() {
        let mut m = NetIoModule::new();
        m.set_tenant_budget(
            OwnerTag(0),
            TenantBudget {
                ring_slots: 1,
                tx_credit: 1,
                max_channels: 1,
            },
        );
        assert!(m.tenant_stats(OwnerTag(0)).is_none(), "no account minted");
    }

    #[test]
    fn destroy_channel_enforces_ownership_and_revokes_caps() {
        let mut m = NetIoModule::new();
        let (id, send, _, _) = m.create_channel(OwnerTag(1), &spec(), template(), 4, 2048);
        assert!(!m.destroy_channel(id, OwnerTag(2)), "non-owner refused");
        assert!(m.destroy_channel(id, OwnerTag(1)));
        assert_eq!(m.channel_count(), 0);
        let frame = tcp_frame(US, THEM, 80, 5000);
        assert_eq!(m.transmit(send, &frame).err(), Some(TxError::BadCapability));
        // Kernel can always reap.
        let (id2, ..) = m.create_channel(OwnerTag(3), &spec(), template(), 4, 2048);
        assert!(m.destroy_channel(id2, OwnerTag(0)));
    }

    #[test]
    fn oversized_frame_dropped_not_truncated() {
        let mut m = NetIoModule::new();
        let (id, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 4, 48);
        m.activate(id);
        let frame = tcp_frame(THEM, US, 5000, 80); // 55 bytes > 48-byte slots
        assert_eq!(m.deliver_software(&frame), Delivery::Dropped);
    }

    #[test]
    fn wakeup_lifecycle_batches_across_processing() {
        let mut m = NetIoModule::new();
        let (_, _send, recv, _) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(ChannelId(0));
        let frame = tcp_frame(THEM, US, 5000, 80);
        // First packet signals; the library starts its wakeup.
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { signal: true, .. }
        ));
        let batch1 = m.consume_batch(recv).unwrap();
        assert_eq!(batch1.len(), 1);
        // While processing, two more arrive: neither signals.
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { signal: false, .. }
        ));
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { signal: false, .. }
        ));
        // The wakeup ends with packets still queued: keep going.
        assert!(!m.end_wakeup(recv).unwrap());
        let batch2 = m.consume_batch(recv).unwrap();
        assert_eq!(batch2.len(), 2);
        // Now the ring is empty: the thread blocks again...
        assert!(m.end_wakeup(recv).unwrap());
        // ...and the next packet posts a fresh signal.
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { signal: true, .. }
        ));
    }

    #[test]
    fn wakeup_api_enforces_rights() {
        let mut m = NetIoModule::new();
        let (_, send, _recv, _) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        assert!(m.consume_batch(send).is_err());
        assert!(m.end_wakeup(send).is_err());
    }

    fn wildcard_spec(port: u16) -> DemuxSpec {
        DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Tcp,
            local_ip: US,
            local_port: port,
            remote_ip: None,
            remote_port: None,
        }
    }

    #[test]
    fn exact_binding_takes_flow_table_path() {
        let mut m = NetIoModule::new();
        let (id, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(id);
        assert_eq!(m.flow_table_len(), 1);
        let frame = tcp_frame(THEM, US, 5000, 80);
        match m.deliver_software(&frame) {
            Delivery::Channel {
                id: did,
                path,
                filter_instrs,
                ..
            } => {
                assert_eq!(did, id);
                assert_eq!(path, DemuxPath::FlowTable);
                // Scan-equivalent modeled cost: this channel's own program.
                assert_eq!(filter_instrs, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = m.demux_stats();
        assert_eq!((s.flow_hits, s.scan_fallbacks, s.packets), (1, 0, 1));
    }

    #[test]
    fn lower_id_wildcard_shadows_flow_hit() {
        // Channel 0: wildcard listener on port 80. Channel 1: exact binding
        // for the same traffic. A scan visits id 0 first, so the wildcard
        // must win even though the flow table knows channel 1 — and it wins
        // from the listen table, not the residual scan.
        let mut m = NetIoModule::new();
        let (wild, ..) = m.create_channel(OwnerTag(1), &wildcard_spec(80), template(), 8, 2048);
        let (exact, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(wild);
        m.activate(exact);
        let frame = tcp_frame(THEM, US, 5000, 80);
        match m.deliver_software(&frame) {
            Delivery::Channel { id, path, .. } => {
                assert_eq!(id, wild, "scan order must win");
                assert_eq!(path, DemuxPath::ListenTable);
            }
            other => panic!("unexpected {other:?}"),
        }
        // With the wildcard torn down, the exact binding takes over on the
        // fast path.
        assert!(m.destroy_channel(wild, OwnerTag(1)));
        match m.deliver_software(&frame) {
            Delivery::Channel { id, path, .. } => {
                assert_eq!(id, exact);
                assert_eq!(path, DemuxPath::FlowTable);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn higher_id_wildcard_does_not_preempt_flow_hit() {
        let mut m = NetIoModule::new();
        let (exact, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        let (wild, ..) = m.create_channel(OwnerTag(1), &wildcard_spec(80), template(), 8, 2048);
        m.activate(exact);
        m.activate(wild);
        let frame = tcp_frame(THEM, US, 5000, 80);
        match m.deliver_software(&frame) {
            Delivery::Channel { id, path, .. } => {
                assert_eq!(id, exact);
                assert_eq!(path, DemuxPath::FlowTable);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_keys_resolve_to_lowest_active_id() {
        let mut m = NetIoModule::new();
        let (a, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        let (b, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        assert_eq!(m.flow_table_len(), 2);
        // Only the higher id is active: it receives.
        m.activate(b);
        let frame = tcp_frame(THEM, US, 5000, 80);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { id, .. } if id == b
        ));
        // Both active: the scan winner is the lower id.
        m.activate(a);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { id, .. } if id == a
        ));
        assert!(m.destroy_channel(a, OwnerTag(1)));
        assert_eq!(m.flow_table_len(), 1);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { id, .. } if id == b
        ));
    }

    #[test]
    fn fragment_falls_back_to_scan_tier() {
        use unp_wire::Ipv4Repr;
        let mut m = NetIoModule::new();
        let (id, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(id);
        // A non-first fragment has no flow identity and no transport
        // header: the exact binding rejects it, and it lands on the kernel
        // default path via the scan tier.
        let ip = Ipv4Repr {
            frag_offset: 64,
            ..Ipv4Repr::simple(THEM, US, IpProtocol::Tcp, 8)
        };
        let frame = Frame::from_vec(
            EthernetRepr {
                dst: MacAddr::from_host_index(OUR_MAC_IDX),
                src: MacAddr::from_host_index(THEIR_MAC_IDX),
                ethertype: EtherType::Ipv4,
            }
            .build_frame(&ip.build_packet(&[0u8; 8])),
        );
        match m.deliver_software(&frame) {
            Delivery::KernelDefault { path, .. } => assert_eq!(path, DemuxPath::FilterScan),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reclaim_owner_sweeps_only_that_owners_channels() {
        let mut m = NetIoModule::new();
        let (dead1, ..) = m.create_channel(OwnerTag(7), &spec(), template(), 8, 2048);
        let (alive, ..) = m.create_channel(OwnerTag(8), &wildcard_spec(81), template(), 8, 2048);
        let (dead2, ..) = m.create_channel(OwnerTag(7), &wildcard_spec(82), template(), 8, 2048);
        m.activate(alive);
        let reclaimed = m.reclaim_owner(OwnerTag(7));
        let ids: Vec<ChannelId> = reclaimed.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![dead1, dead2]);
        assert_eq!(m.channel_count(), 1);
        assert_eq!(m.flow_table_len(), 0, "dead flow entry swept");
        assert_eq!(m.listen_table_len(), 1, "survivor's listen entry kept");
        // The survivor still receives.
        let frame = tcp_frame(THEM, US, 5000, 81);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { id, .. } if id == alive
        ));
        assert!(m.reclaim_owner(OwnerTag(7)).is_empty(), "idempotent");
    }

    #[test]
    fn pressure_cap_sheds_at_reduced_capacity() {
        let mut m = NetIoModule::new();
        let (id, _, recv, _) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(id);
        m.set_pressure_cap(Some(1));
        let frame = tcp_frame(THEM, US, 5000, 80);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { .. }
        ));
        assert_eq!(m.deliver_software(&frame), Delivery::Dropped);
        // Lifting the pressure restores the configured capacity.
        m.set_pressure_cap(None);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { .. }
        ));
        assert_eq!(m.consume(recv).unwrap().len(), 2);
    }

    #[test]
    fn listen_binding_takes_listen_table_path() {
        let mut m = NetIoModule::new();
        let (id, ..) = m.create_channel(OwnerTag(1), &wildcard_spec(80), template(), 8, 2048);
        m.activate(id);
        assert_eq!((m.flow_table_len(), m.listen_table_len()), (0, 1));
        // Two different remote endpoints both land via the 3-tuple table —
        // no filter interpretation on the host path.
        for sport in [5000, 6000] {
            let frame = tcp_frame(THEM, US, sport, 80);
            match m.deliver_software(&frame) {
                Delivery::Channel {
                    id: did,
                    path,
                    filter_instrs,
                    ..
                } => {
                    assert_eq!(did, id);
                    assert_eq!(path, DemuxPath::ListenTable);
                    // Scan-equivalent modeled cost: the wildcard program
                    // is 5 instructions (no remote compares).
                    assert_eq!(filter_instrs, 5);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let s = m.demux_stats();
        assert_eq!((s.flow_hits, s.listen_hits, s.scan_fallbacks), (0, 2, 0));
        let cs = m.channel_stats(id).unwrap();
        assert_eq!(cs.listen_hits, 2);
    }

    #[test]
    fn half_wildcard_binding_stays_on_scan_tier() {
        let mut m = NetIoModule::new();
        let half = DemuxSpec {
            remote_port: None,
            ..spec()
        };
        let (id, ..) = m.create_channel(OwnerTag(1), &half, template(), 8, 2048);
        m.activate(id);
        assert_eq!((m.flow_table_len(), m.listen_table_len()), (0, 0));
        let frame = tcp_frame(THEM, US, 5000, 80);
        match m.deliver_software(&frame) {
            Delivery::Channel { id: did, path, .. } => {
                assert_eq!(did, id);
                assert_eq!(path, DemuxPath::FilterScan);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn incremental_caches_match_rebuild_through_churn() {
        // The oracle invariant behind the incremental maintenance: after
        // any interleaving of create/activate/destroy, the patched-in-place
        // caches equal a from-scratch rebuild, and classification results
        // are unchanged by forcing that rebuild.
        let mut m = NetIoModule::new();
        let mut ids = Vec::new();
        for i in 0..24u16 {
            let s = match i % 3 {
                0 => spec(),
                1 => wildcard_spec(80 + i),
                _ => DemuxSpec {
                    remote_port: None,
                    ..spec()
                },
            };
            let (id, ..) = m.create_channel(OwnerTag(1), &s, template(), 8, 2048);
            if i % 4 != 3 {
                m.activate(id);
            }
            ids.push(id);
            assert!(m.caches_match_rebuild(), "after install {i}");
        }
        let frame = tcp_frame(THEM, US, 5000, 80);
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                assert!(m.destroy_channel(*id, OwnerTag(1)));
                assert!(m.caches_match_rebuild(), "after destroy {i}");
                let after = m.classify(&frame);
                m.force_rebuild_active();
                assert_eq!(m.classify(&frame), after, "rebuild must be a no-op");
            }
        }
        // Re-activation of a live channel is idempotent.
        for id in &ids[1..2] {
            m.activate(*id);
            m.activate(*id);
            assert!(m.caches_match_rebuild());
        }
    }

    #[test]
    fn duplicate_listen_keys_resolve_to_lowest_active_id() {
        let mut m = NetIoModule::new();
        let (a, ..) = m.create_channel(OwnerTag(1), &wildcard_spec(80), template(), 8, 2048);
        let (b, ..) = m.create_channel(OwnerTag(1), &wildcard_spec(80), template(), 8, 2048);
        assert_eq!(m.listen_table_len(), 2);
        m.activate(b);
        let frame = tcp_frame(THEM, US, 5000, 80);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { id, .. } if id == b
        ));
        m.activate(a);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { id, .. } if id == a
        ));
        assert!(m.destroy_channel(a, OwnerTag(1)));
        assert_eq!(m.listen_table_len(), 1);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { id, .. } if id == b
        ));
    }

    #[test]
    fn demux_mem_bytes_tracks_population() {
        let mut m = NetIoModule::new();
        let empty = m.demux_mem_bytes();
        for i in 0..64u16 {
            let s = DemuxSpec {
                remote_port: Some(6000 + i),
                ..spec()
            };
            let (id, ..) = m.create_channel(OwnerTag(1), &s, template(), 2, 256);
            m.activate(id);
        }
        assert!(
            m.demux_mem_bytes() > empty,
            "footprint grows with the tables"
        );
    }

    #[test]
    fn classify_agrees_with_scan_reference() {
        let mut m = NetIoModule::new();
        let (a, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        let (b, ..) = m.create_channel(OwnerTag(1), &wildcard_spec(81), template(), 8, 2048);
        m.activate(a);
        m.activate(b);
        for frame in [
            tcp_frame(THEM, US, 5000, 80),
            tcp_frame(THEM, US, 5000, 81),
            tcp_frame(THEM, US, 5001, 80),
            tcp_frame(US, THEM, 80, 5000),
        ] {
            let (fast, fast_instrs, _) = m.classify(&frame);
            let (slow, slow_instrs) = m.classify_scan_reference(&frame);
            assert_eq!(fast, slow);
            assert_eq!(fast_instrs, slow_instrs, "modeled cost must match scan");
        }
    }
}
