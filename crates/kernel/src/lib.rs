//! `unp-kernel` — the in-kernel **network I/O module**.
//!
//! "The third module implements network access by providing efficient and
//! secure input packet delivery, and outbound packet transmission. There is
//! one network I/O module for each host-network interface on the host"
//! (paper §3.3). This crate implements its three responsibilities:
//!
//! * **Protected transmission** — all access is through capabilities;
//!   "the network I/O module associates with the capability a template
//!   that constrains the header fields of packets sent using that
//!   capability" and verifies every outgoing packet against it
//!   (anti-impersonation; see [`template`]).
//! * **Protected delivery** — per-connection demux bindings (software
//!   filters on Ethernet, BQI rings on AN1) place incoming packets into a
//!   bounded per-channel ring shared with exactly one library. Delivery is
//!   zero-copy: the ring holds refcounted [`unp_buffers::Frame`] handles
//!   whose pooled backing buffers model the pinned shared-memory slots of
//!   the paper (`unp_buffers::SharedRegion` remains the explicit model of
//!   that memory; the hot path passes handles to it rather than copying
//!   through it).
//! * **Notification batching** — "our implementation attempts, where
//!   possible, to batch multiple network packets per semaphore notification
//!   in order to amortize the cost of signaling."
//!
//! [`ports`] adds the Mach-port-like rights the registry and libraries use
//! for connection hand-off.

pub mod ports;
pub mod template;

pub use ports::{PortId, PortSpace};
pub use template::{HeaderTemplate, TemplateViolation};

use std::collections::{HashMap, VecDeque};

use unp_buffers::{Frame, OwnerTag, RingId};
use unp_filter::programs::DemuxSpec;
use unp_filter::{CompiledDemux, Demux};
pub use unp_sim::DemuxPath;
use unp_wire::FlowKey;

/// Maps the cost model's path enum onto the journal's (the trace crate
/// sits below `unp-sim` and cannot import it).
fn path_kind(path: DemuxPath) -> unp_trace::PathKind {
    match path {
        DemuxPath::FlowTable => unp_trace::PathKind::FlowTable,
        DemuxPath::FilterScan => unp_trace::PathKind::FilterScan,
        DemuxPath::Hardware => unp_trace::PathKind::Hardware,
    }
}

/// Identifier of a delivery channel (one per connection endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(pub u32);

/// An unforgeable capability naming a channel with a rights mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capability(u64);

impl Capability {
    /// Constructs a capability from a raw value. Within the simulation
    /// capabilities are unforgeable because only the kernel mints them and
    /// validates every use; this constructor exists so adversarial tests
    /// can *attempt* forgery and verify it fails.
    pub fn forge_for_tests(raw: u64) -> Capability {
        Capability(raw)
    }
}

/// Rights a capability can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Right {
    /// May transmit packets matching the channel's template.
    Send,
    /// May consume packets from the channel's receive ring.
    Receive,
}

/// Errors from the transmit path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// Unknown or revoked capability.
    BadCapability,
    /// The capability lacks the Send right.
    NoSendRight,
    /// The packet header does not match the bound template.
    Template(TemplateViolation),
}

/// Where an incoming frame was delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered to a channel's shared ring. `signal` is true if a
    /// semaphore notification must be posted (false when a previous
    /// notification is still pending — the batching path).
    Channel {
        /// Receiving channel.
        id: ChannelId,
        /// Whether to post the wakeup semaphore.
        signal: bool,
        /// Filter instructions the 1993 model charges for this decision:
        /// what a linear scan over the active bindings interprets before
        /// accepting (zero on the hardware path). Reported identically
        /// whether the host mechanism was the flow table or the scan, so
        /// the reproduced tables are invariant to the fast path.
        filter_instrs: usize,
        /// Which demultiplexing machinery decided the delivery.
        path: DemuxPath,
        /// Ring occupancy after the push — the live backlog a windowed
        /// sampler watches.
        depth: u32,
    },
    /// No binding matched: delivered to protected kernel memory (BQI 0 /
    /// kernel default queue) for the in-kernel protocols or the registry.
    KernelDefault {
        /// Filter instructions interpreted before falling through.
        filter_instrs: usize,
        /// Which demultiplexing machinery decided the miss.
        path: DemuxPath,
    },
    /// Dropped: the target ring or region was full.
    Dropped,
}

struct CapEntry {
    channel: ChannelId,
    right: Right,
}

struct Channel {
    owner: OwnerTag,
    /// Pinned-memory model: at most `capacity` frames of at most
    /// `slot_size` bytes may sit in the ring, exactly as if each occupied
    /// a slot of the channel's shared region.
    capacity: usize,
    slot_size: usize,
    rx_ring: VecDeque<Frame>,
    template: HeaderTemplate,
    demux: CompiledDemux,
    /// The spec's exact-match identity, when it has one (fully-specified
    /// connection bindings whose link-header length matches the module's).
    /// `None` channels — wildcards, fragments-only oddities, mismatched
    /// link framing — are decided by the filter scan.
    flow: Option<FlowKey>,
    /// Software demux only fires once the registry activates the binding
    /// at connection-establishment completion; until then, traffic for the
    /// endpoint still flows to the kernel default path (the registry).
    active: bool,
    /// True while a semaphore notification is posted but not yet consumed.
    notify_pending: bool,
    /// AN1: the ring id registered in the NIC's BQI table.
    ring_id: Option<RingId>,
    rx_delivered: u64,
    rx_batched: u64,
    /// Software deliveries this channel received via the flow table.
    flow_hits: u64,
    /// Software deliveries that went through the filter scan instead.
    scan_fallbacks: u64,
}

/// Per-channel delivery and demultiplexing counters, reported by
/// [`NetIoModule::channel_stats`] and handed to the registry at teardown so
/// it can flag bindings that keep missing the flow-table fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Frames placed into the channel's ring.
    pub delivered: u64,
    /// Deliveries batched behind a pending notification (no fresh signal).
    pub batched: u64,
    /// Software deliveries decided by the exact-match flow table.
    pub flow_hits: u64,
    /// Software deliveries decided by the filter scan.
    pub scan_fallbacks: u64,
}

/// Software-demultiplexing counters, reported by
/// [`NetIoModule::demux_stats`] for the `repro-tables` demux section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DemuxStats {
    /// Frames whose delivery was decided by the flow table.
    pub flow_hits: u64,
    /// Frames decided by the filter scan (wildcard bindings, fragments,
    /// non-IP frames, and kernel-default misses).
    pub scan_fallbacks: u64,
    /// Total frames through [`NetIoModule::deliver_software`].
    pub packets: u64,
    /// Total modeled filter instructions across those frames (what the
    /// 1993 scan interprets — the cost-model input).
    pub filter_instrs: u64,
}

impl DemuxStats {
    /// Modeled filter instructions per packet.
    pub fn avg_filter_instrs(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.filter_instrs as f64 / self.packets as f64
    }

    /// Fraction of software-demuxed frames the flow table decided.
    pub fn flow_hit_rate(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.flow_hits as f64 / self.packets as f64
    }
}

/// The network I/O module for one device. See module docs.
///
/// Software demultiplexing is two-tiered. At channel installation each
/// [`DemuxSpec`] is *distilled*: fully-specified connection bindings (the
/// common case the registry installs at connection setup) become entries in
/// an exact-match flow table keyed by the frame's 5-tuple, so delivery is
/// one [`FlowKey::extract`] parse plus one hash lookup — O(1) in the number
/// of connections. Wildcard bindings (and frames with no exact-match
/// identity: fragments, non-IP) fall back to the paper-era filter scan over
/// a cached, insertion-maintained id ordering. Correctness invariant: the
/// two tiers always agree with a pure linear scan — a flow-table hit is
/// only taken after any lower-id wildcard binding has had its filter run
/// (scan order is id order, first match wins), and a distilled binding can
/// never match a frame whose key differs from its own
/// (`DemuxSpec::distill`'s iff guarantee).
pub struct NetIoModule {
    channels: HashMap<u32, Channel>,
    caps: HashMap<u64, CapEntry>,
    ring_index: HashMap<RingId, ChannelId>,
    /// Exact-match tier: 5-tuple → ids of channels distilled to that key,
    /// ascending (duplicates possible; the scan-equivalent winner is the
    /// lowest *active* id).
    flow_table: HashMap<FlowKey, Vec<u32>>,
    /// Link-header length the flow table extracts keys with, fixed by the
    /// first distillable channel (one module serves one device, so all its
    /// channels share framing; a mismatched spec stays on the scan tier).
    flow_lhl: Option<usize>,
    /// All channel ids, ascending — the scan order, maintained on
    /// install/teardown instead of collected and sorted per packet.
    scan_order: Vec<u32>,
    /// Active channel ids, ascending (the ids a scan actually visits).
    active_ids: Vec<u32>,
    /// `active_prefix[i]` = total filter instructions of `active_ids[..i]`;
    /// the scan charges `active_prefix[i + 1]` when `active_ids[i]`
    /// accepts, letting the fast path report scan-identical costs in O(1).
    active_prefix: Vec<usize>,
    /// Active channels *not* in the flow table, ascending — the only
    /// filters a flow-table decision must still consult.
    active_wild: Vec<u32>,
    demux_stats: DemuxStats,
    /// Slow-consumer fault model: when set, every ring behaves as if it
    /// had at most this many slots, so overload sheds packets at the
    /// channel boundary (recovered by TCP retransmission) instead of
    /// stalling the host. `None` restores the configured capacities.
    pressure_cap: Option<usize>,
    next_channel: u32,
    next_cap: u64,
    next_ring: u32,
    /// Frames that fell through to the kernel default path.
    pub default_deliveries: u64,
    /// Packets rejected by template checks (attempted impersonation or
    /// buggy library).
    pub tx_rejections: u64,
}

impl Default for NetIoModule {
    fn default() -> Self {
        Self::new()
    }
}

impl NetIoModule {
    /// Creates an empty module.
    pub fn new() -> NetIoModule {
        NetIoModule {
            channels: HashMap::new(),
            caps: HashMap::new(),
            ring_index: HashMap::new(),
            flow_table: HashMap::new(),
            flow_lhl: None,
            scan_order: Vec::new(),
            active_ids: Vec::new(),
            active_prefix: vec![0],
            active_wild: Vec::new(),
            demux_stats: DemuxStats::default(),
            pressure_cap: None,
            next_channel: 0,
            next_cap: 0x6100_0000_0000_0000,
            next_ring: 1, // RingId(0) is the kernel default
            default_deliveries: 0,
            tx_rejections: 0,
        }
    }

    /// Creates a delivery channel on behalf of `owner` (only the registry
    /// server calls this — "initially, only the privileged registry server
    /// has access to the network module"). Returns the channel id, the
    /// send and receive capabilities for the application, and the ring id
    /// to register in a BQI table if the device supports hardware demux.
    ///
    /// `region_slots`/`slot_size` size the pinned shared memory; `spec`
    /// controls what the channel may receive and `template` what it may
    /// send.
    pub fn create_channel(
        &mut self,
        owner: OwnerTag,
        spec: &DemuxSpec,
        template: HeaderTemplate,
        region_slots: usize,
        slot_size: usize,
    ) -> (ChannelId, Capability, Capability, RingId) {
        let id = ChannelId(self.next_channel);
        self.next_channel += 1;
        let ring_id = RingId(self.next_ring);
        self.next_ring += 1;
        // Distill the spec into its exact-match identity. The first
        // distillable channel pins the module's key-extraction framing;
        // later specs with different framing stay on the scan tier.
        let flow = spec
            .distill()
            .filter(|_| *self.flow_lhl.get_or_insert(spec.link_header_len) == spec.link_header_len);
        if let Some(key) = flow {
            // Ids are minted ascending, so pushing keeps each entry sorted.
            self.flow_table.entry(key).or_default().push(id.0);
        }
        let ch = Channel {
            owner,
            capacity: region_slots,
            slot_size,
            rx_ring: VecDeque::with_capacity(region_slots),
            template,
            demux: CompiledDemux::from_spec(spec),
            flow,
            active: false,
            notify_pending: false,
            ring_id: Some(ring_id),
            rx_delivered: 0,
            rx_batched: 0,
            flow_hits: 0,
            scan_fallbacks: 0,
        };
        self.channels.insert(id.0, ch);
        self.scan_order.push(id.0); // ascending mint order = scan order
        self.ring_index.insert(ring_id, id);
        let send = self.issue_cap(id, Right::Send);
        let recv = self.issue_cap(id, Right::Receive);
        (id, send, recv, ring_id)
    }

    /// Rebuilds the active-channel scan caches (id order, instruction
    /// prefix sums, wildcard subset). Called on activation and teardown —
    /// per-connection events — so the per-packet path never sorts or
    /// allocates.
    fn rebuild_active(&mut self) {
        self.active_ids.clear();
        self.active_wild.clear();
        self.active_prefix.clear();
        self.active_prefix.push(0);
        let mut sum = 0usize;
        for &id in &self.scan_order {
            let ch = &self.channels[&id];
            if !ch.active {
                continue;
            }
            self.active_ids.push(id);
            sum += ch.demux.instruction_count();
            self.active_prefix.push(sum);
            if ch.flow.is_none() {
                self.active_wild.push(id);
            }
        }
    }

    /// Benchmark hook: runs one [`rebuild_active`](Self::rebuild_active)
    /// pass so profilers can time the churn cost (the O(active channels)
    /// cache rebuild every activation and teardown pays) in isolation.
    pub fn force_rebuild_active(&mut self) {
        self.rebuild_active();
    }

    /// The filter instructions a linear scan interprets before `id`
    /// accepts: every earlier active binding's full program plus `id`'s.
    fn scan_equiv_instrs(&self, id: u32) -> usize {
        let pos = self.active_ids.binary_search(&id).expect("active channel");
        self.active_prefix[pos + 1]
    }

    fn issue_cap(&mut self, channel: ChannelId, right: Right) -> Capability {
        let cap = Capability(self.next_cap);
        self.next_cap += 0x9E37_79B9; // sparse, non-guessable-looking ids
        self.caps.insert(cap.0, CapEntry { channel, right });
        cap
    }

    /// Destroys a channel and revokes its capabilities. Only the owner (or
    /// the kernel, `OwnerTag(0)`) may do so.
    pub fn destroy_channel(&mut self, id: ChannelId, requester: OwnerTag) -> bool {
        let Some(ch) = self.channels.get(&id.0) else {
            return false;
        };
        if ch.owner != requester && requester != OwnerTag(0) {
            return false;
        }
        if let Some(ring) = ch.ring_id {
            self.ring_index.remove(&ring);
        }
        if let Some(key) = ch.flow {
            if let Some(ids) = self.flow_table.get_mut(&key) {
                ids.retain(|&i| i != id.0);
                if ids.is_empty() {
                    self.flow_table.remove(&key);
                }
            }
        }
        self.channels.remove(&id.0);
        self.scan_order.retain(|&i| i != id.0);
        self.rebuild_active();
        self.caps.retain(|_, e| e.channel != id);
        true
    }

    /// Destroys every channel owned by `owner` — the kernel's backstop
    /// sweep after a process death. Returns the reclaimed channel ids and
    /// their ring ids (ascending), so the caller can release any BQI
    /// bindings and journal each reclamation.
    pub fn reclaim_owner(&mut self, owner: OwnerTag) -> Vec<(ChannelId, Option<RingId>)> {
        let mut doomed: Vec<(ChannelId, Option<RingId>)> = self
            .channels
            .iter()
            .filter(|(_, ch)| ch.owner == owner)
            .map(|(&id, ch)| (ChannelId(id), ch.ring_id))
            .collect();
        doomed.sort_by_key(|(id, _)| id.0);
        for &(id, _) in &doomed {
            self.destroy_channel(id, OwnerTag(0));
        }
        doomed
    }

    /// Sets (or clears) the slow-consumer ring pressure cap. See the
    /// field docs; `Some(0)` sheds everything.
    pub fn set_pressure_cap(&mut self, cap: Option<usize>) {
        self.pressure_cap = cap;
    }

    /// Number of live channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Validates an outgoing frame against the template bound to `cap`.
    /// On success the caller hands the frame to the device.
    pub fn transmit(&mut self, cap: Capability, frame: &[u8]) -> Result<ChannelId, TxError> {
        let entry = self.caps.get(&cap.0).ok_or(TxError::BadCapability)?;
        if entry.right != Right::Send {
            return Err(TxError::NoSendRight);
        }
        let ch = self
            .channels
            .get(&entry.channel.0)
            .ok_or(TxError::BadCapability)?;
        let channel = entry.channel;
        match ch.template.check(frame) {
            Ok(()) => {
                unp_trace::emit(None, || unp_trace::Event::TxTemplateCheck {
                    channel: channel.0,
                    ok: true,
                });
                Ok(channel)
            }
            Err(v) => {
                self.tx_rejections += 1;
                unp_trace::emit(None, || unp_trace::Event::TxTemplateCheck {
                    channel: channel.0,
                    ok: false,
                });
                Err(TxError::Template(v))
            }
        }
    }

    /// Classifies a frame the way [`NetIoModule::deliver_software`] will,
    /// without delivering: `(target, filter_instrs, path)` where
    /// `filter_instrs` is the scan-equivalent modeled cost. Exposed so the
    /// differential tests and benchmarks can exercise the decision alone.
    pub fn classify(&self, frame: &[u8]) -> (Option<ChannelId>, usize, DemuxPath) {
        // Tier 1: exact-match lookup. The winner is the lowest active id
        // distilled to the frame's key (ties between duplicate bindings
        // resolve exactly as the scan would).
        let flow_hit: Option<u32> = self
            .flow_lhl
            .and_then(|lhl| FlowKey::extract(frame, lhl))
            .and_then(|key| self.flow_table.get(&key))
            .and_then(|ids| ids.iter().copied().find(|id| self.channels[id].active));
        // Tier 2: a lower-id wildcard binding shadows the flow hit (the
        // scan runs filters in id order and first match wins), so those —
        // and only those — filters must still run. On a flow miss no
        // distilled binding can match (the distill/extract iff guarantee),
        // so the scan reduces to the wildcard subset.
        let limit = flow_hit.unwrap_or(u32::MAX);
        for &id in &self.active_wild {
            if id >= limit {
                break;
            }
            if self.channels[&id].demux.matches(frame) {
                return (
                    Some(ChannelId(id)),
                    self.scan_equiv_instrs(id),
                    DemuxPath::FilterScan,
                );
            }
        }
        match flow_hit {
            Some(id) => (
                Some(ChannelId(id)),
                self.scan_equiv_instrs(id),
                DemuxPath::FlowTable,
            ),
            None => (
                None,
                *self.active_prefix.last().expect("prefix never empty"),
                DemuxPath::FilterScan,
            ),
        }
    }

    /// Reference software demultiplexer: the pure linear scan, running
    /// every active channel's filter in id order until one accepts.
    /// `(target, filter_instrs)`. The property tests assert
    /// [`NetIoModule::classify`] agrees with this on both fields for
    /// arbitrary frames and channel sets; the benchmarks measure what the
    /// flow table saves over it.
    pub fn classify_scan_reference(&self, frame: &[u8]) -> (Option<ChannelId>, usize) {
        let mut instrs = 0;
        for &id in &self.active_ids {
            let ch = &self.channels[&id];
            instrs += ch.demux.instruction_count();
            if ch.demux.matches(frame) {
                return (Some(ChannelId(id)), instrs);
            }
        }
        (None, instrs)
    }

    /// Software demultiplexing (Ethernet path): decides the receiving
    /// channel — flow table for exact-match bindings, filter scan for the
    /// rest — then places a handle to the frame in that channel's ring.
    pub fn deliver_software(&mut self, frame: &Frame) -> Delivery {
        let (target, instrs, path) = self.classify(frame);
        self.demux_stats.packets += 1;
        self.demux_stats.filter_instrs += instrs as u64;
        match path {
            DemuxPath::FlowTable => self.demux_stats.flow_hits += 1,
            _ => self.demux_stats.scan_fallbacks += 1,
        }
        unp_trace::emit(Some(frame.id()), || unp_trace::Event::DemuxClassify {
            path: path_kind(path),
            filter_instrs: instrs as u32,
            matched: target.is_some(),
        });
        match target {
            Some(id) => self.place(id, frame, instrs, path),
            None => {
                self.default_deliveries += 1;
                Delivery::KernelDefault {
                    filter_instrs: instrs,
                    path,
                }
            }
        }
    }

    /// Hardware demultiplexing (AN1 path): the NIC already classified the
    /// frame to `ring` via its BQI table; place it directly.
    pub fn deliver_hardware(&mut self, ring: RingId, frame: &Frame) -> Delivery {
        let target = self.ring_index.get(&ring).copied();
        unp_trace::emit(Some(frame.id()), || unp_trace::Event::DemuxClassify {
            path: unp_trace::PathKind::Hardware,
            filter_instrs: 0,
            matched: target.is_some(),
        });
        match target {
            Some(id) => self.place(id, frame, 0, DemuxPath::Hardware),
            None => {
                self.default_deliveries += 1;
                Delivery::KernelDefault {
                    filter_instrs: 0,
                    path: DemuxPath::Hardware,
                }
            }
        }
    }

    fn place(
        &mut self,
        id: ChannelId,
        frame: &Frame,
        filter_instrs: usize,
        path: DemuxPath,
    ) -> Delivery {
        let pressure = self.pressure_cap;
        let ch = self
            .channels
            .get_mut(&id.0)
            .expect("placed to live channel");
        // Same backpressure as the shared-region model: an oversize packet
        // doesn't fit a slot, a full ring means the region is exhausted.
        let capacity = pressure.map_or(ch.capacity, |c| ch.capacity.min(c));
        if frame.len() > ch.slot_size || ch.rx_ring.len() >= capacity {
            unp_trace::emit(Some(frame.id()), || unp_trace::Event::RingDrop {
                channel: id.0,
            });
            return Delivery::Dropped;
        }
        ch.rx_ring.push_back(frame.clone());
        ch.rx_delivered += 1;
        match path {
            DemuxPath::FlowTable => ch.flow_hits += 1,
            DemuxPath::FilterScan => ch.scan_fallbacks += 1,
            DemuxPath::Hardware => {}
        }
        let signal = !ch.notify_pending;
        if signal {
            ch.notify_pending = true;
        } else {
            ch.rx_batched += 1;
        }
        let depth = ch.rx_ring.len() as u32;
        unp_trace::emit(Some(frame.id()), || unp_trace::Event::RingEnqueue {
            channel: id.0,
            depth,
            signal,
        });
        Delivery::Channel {
            id,
            signal,
            filter_instrs,
            path,
            depth,
        }
    }

    /// The library side: consume every queued packet for `cap` and clear
    /// the notification flag (single-shot read).
    pub fn consume(&mut self, cap: Capability) -> Result<Vec<Frame>, TxError> {
        let out = self.consume_batch(cap)?;
        let _ = self.end_wakeup(cap)?;
        Ok(out)
    }

    /// Drains the ring *without* clearing the notification flag: the
    /// library thread is awake and processing, so packets arriving in the
    /// meantime must not post fresh semaphore signals — this is the
    /// batching the paper relies on ("batch multiple network packets per
    /// semaphore notification in order to amortize the cost of
    /// signaling"). Pair with [`NetIoModule::end_wakeup`].
    pub fn consume_batch(&mut self, cap: Capability) -> Result<Vec<Frame>, TxError> {
        let entry = self.caps.get(&cap.0).ok_or(TxError::BadCapability)?;
        if entry.right != Right::Receive {
            return Err(TxError::NoSendRight);
        }
        let channel = entry.channel;
        let ch = self
            .channels
            .get_mut(&channel.0)
            .ok_or(TxError::BadCapability)?;
        let frames: Vec<Frame> = ch.rx_ring.drain(..).collect();
        unp_trace::emit(None, || unp_trace::Event::WakeupBatch {
            channel: channel.0,
            frames: frames.len() as u32,
        });
        Ok(frames)
    }

    /// Ends a wakeup: if the ring is empty the notification flag clears
    /// (the thread blocks on the semaphore again) and `true` is returned;
    /// if packets arrived during processing the flag stays set and `false`
    /// tells the library to loop and consume again.
    pub fn end_wakeup(&mut self, cap: Capability) -> Result<bool, TxError> {
        let entry = self.caps.get(&cap.0).ok_or(TxError::BadCapability)?;
        if entry.right != Right::Receive {
            return Err(TxError::NoSendRight);
        }
        let ch = self
            .channels
            .get_mut(&entry.channel.0)
            .ok_or(TxError::BadCapability)?;
        if ch.rx_ring.is_empty() {
            ch.notify_pending = false;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Activates a channel's receive binding ("the registry server
    /// activates the address demultiplexing mechanism as part of the
    /// connection establishment phase").
    pub fn activate(&mut self, id: ChannelId) -> bool {
        match self.channels.get_mut(&id.0) {
            Some(ch) => {
                ch.active = true;
                self.rebuild_active();
                true
            }
            None => false,
        }
    }

    /// Pins the AN1 BQI the channel's template requires on outgoing
    /// packets, once the peer's announcement arrives during setup.
    pub fn set_template_bqi(&mut self, id: ChannelId, bqi: u16) -> bool {
        match self.channels.get_mut(&id.0) {
            Some(ch) => {
                ch.template.bqi = Some(bqi);
                true
            }
            None => false,
        }
    }

    /// Per-channel delivery/demux counters, or `None` for a dead channel.
    pub fn channel_stats(&self, id: ChannelId) -> Option<ChannelStats> {
        self.channels.get(&id.0).map(|ch| ChannelStats {
            delivered: ch.rx_delivered,
            batched: ch.rx_batched,
            flow_hits: ch.flow_hits,
            scan_fallbacks: ch.scan_fallbacks,
        })
    }

    /// Software-demultiplexing counters since construction.
    pub fn demux_stats(&self) -> DemuxStats {
        self.demux_stats
    }

    /// Number of live flow-table entries (distilled bindings).
    pub fn flow_table_len(&self) -> usize {
        self.flow_table.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unp_wire::{
        EtherType, EthernetRepr, IpProtocol, Ipv4Addr, Ipv4Repr, MacAddr, SeqNum, TcpFlags, TcpRepr,
    };

    const US: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const THEM: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const OUR_MAC_IDX: u32 = 2;
    const THEIR_MAC_IDX: u32 = 1;

    fn spec() -> DemuxSpec {
        DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Tcp,
            local_ip: US,
            local_port: 80,
            remote_ip: Some(THEM),
            remote_port: Some(5000),
        }
    }

    fn template() -> HeaderTemplate {
        HeaderTemplate {
            link_header_len: 14,
            src_mac: Some(MacAddr::from_host_index(OUR_MAC_IDX)),
            dst_mac: None,
            ethertype: EtherType::Ipv4,
            protocol: IpProtocol::Tcp,
            src_ip: US,
            dst_ip: THEM,
            src_port: 80,
            dst_port: Some(5000),
            bqi: None,
        }
    }

    fn tcp_frame(src_ip: Ipv4Addr, dst_ip: Ipv4Addr, sport: u16, dport: u16) -> Frame {
        let t = TcpRepr {
            src_port: sport,
            dst_port: dport,
            seq: SeqNum(1),
            ack_num: SeqNum(0),
            flags: TcpFlags::ack(),
            window: 1000,
            mss: None,
        };
        let seg = t.build_segment(src_ip, dst_ip, b"d");
        let ip = Ipv4Repr::simple(src_ip, dst_ip, IpProtocol::Tcp, seg.len());
        Frame::from_vec(
            EthernetRepr {
                dst: MacAddr::from_host_index(if dst_ip == US {
                    OUR_MAC_IDX
                } else {
                    THEIR_MAC_IDX
                }),
                src: MacAddr::from_host_index(if src_ip == US {
                    OUR_MAC_IDX
                } else {
                    THEIR_MAC_IDX
                }),
                ethertype: EtherType::Ipv4,
            }
            .build_frame(&ip.build_packet(&seg)),
        )
    }

    #[test]
    fn channel_delivery_and_consume_roundtrip() {
        let mut m = NetIoModule::new();
        let (id, _send, recv, _ring) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        // Until activation, traffic falls through to the kernel default.
        let frame = tcp_frame(THEM, US, 5000, 80);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::KernelDefault { .. }
        ));
        m.activate(id);
        let d = m.deliver_software(&frame);
        match d {
            Delivery::Channel {
                id: did,
                signal,
                filter_instrs,
                ..
            } => {
                assert_eq!(did, id);
                assert!(signal, "first packet posts the semaphore");
                assert!(filter_instrs > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let pkts = m.consume(recv).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0], frame);
    }

    #[test]
    fn notification_batching() {
        let mut m = NetIoModule::new();
        let (id, _send, recv, _) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(id);
        let frame = tcp_frame(THEM, US, 5000, 80);
        let signals: Vec<bool> = (0..4)
            .map(|_| match m.deliver_software(&frame) {
                Delivery::Channel { signal, .. } => signal,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(signals, vec![true, false, false, false], "batched");
        let pkts = m.consume(recv).unwrap();
        assert_eq!(pkts.len(), 4);
        let stats = m.channel_stats(id).unwrap();
        assert_eq!((stats.delivered, stats.batched), (4, 3));
        assert_eq!(
            stats.flow_hits + stats.scan_fallbacks,
            4,
            "every software delivery is attributed to a demux tier"
        );
        // After consuming, the next packet signals again.
        match m.deliver_software(&frame) {
            Delivery::Channel { signal, .. } => assert!(signal),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unmatched_traffic_goes_to_kernel_default() {
        let mut m = NetIoModule::new();
        let (id, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(id);
        // Wrong port: no channel matches.
        let frame = tcp_frame(THEM, US, 5000, 81);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::KernelDefault { .. }
        ));
        assert_eq!(m.default_deliveries, 1);
    }

    #[test]
    fn transmit_requires_valid_capability_and_template() {
        let mut m = NetIoModule::new();
        let (_, send, recv, _) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        let good = tcp_frame(US, THEM, 80, 5000);
        assert!(m.transmit(send, &good).is_ok());
        // Receive capability has no send right.
        assert_eq!(m.transmit(recv, &good).err(), Some(TxError::NoSendRight));
        // Forged capability.
        assert_eq!(
            m.transmit(Capability(0xdead_beef), &good).err(),
            Some(TxError::BadCapability)
        );
    }

    #[test]
    fn impersonation_rejected_by_template() {
        let mut m = NetIoModule::new();
        let (_, send, _, _) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        // Spoofed source IP.
        let spoofed_ip = tcp_frame(Ipv4Addr::new(10, 0, 0, 9), THEM, 80, 5000);
        assert!(matches!(
            m.transmit(send, &spoofed_ip),
            Err(TxError::Template(_))
        ));
        // Wrong source port (stealing another connection's identity).
        let spoofed_port = tcp_frame(US, THEM, 81, 5000);
        assert!(matches!(
            m.transmit(send, &spoofed_port),
            Err(TxError::Template(_))
        ));
        assert_eq!(m.tx_rejections, 2);
    }

    #[test]
    fn hardware_path_places_by_ring() {
        let mut m = NetIoModule::new();
        let (id, _, _, ring) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        let frame = tcp_frame(THEM, US, 5000, 80);
        match m.deliver_hardware(ring, &frame) {
            Delivery::Channel {
                id: did,
                filter_instrs,
                ..
            } => {
                assert_eq!(did, id);
                assert_eq!(filter_instrs, 0, "no software filtering on AN1");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown ring → kernel default.
        assert!(matches!(
            m.deliver_hardware(RingId(999), &frame),
            Delivery::KernelDefault { .. }
        ));
    }

    #[test]
    fn ring_overflow_drops() {
        let mut m = NetIoModule::new();
        let (id, _, _, _) = m.create_channel(OwnerTag(1), &spec(), template(), 2, 2048);
        m.activate(id);
        let frame = tcp_frame(THEM, US, 5000, 80);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { .. }
        ));
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { .. }
        ));
        assert_eq!(m.deliver_software(&frame), Delivery::Dropped);
    }

    #[test]
    fn destroy_channel_enforces_ownership_and_revokes_caps() {
        let mut m = NetIoModule::new();
        let (id, send, _, _) = m.create_channel(OwnerTag(1), &spec(), template(), 4, 2048);
        assert!(!m.destroy_channel(id, OwnerTag(2)), "non-owner refused");
        assert!(m.destroy_channel(id, OwnerTag(1)));
        assert_eq!(m.channel_count(), 0);
        let frame = tcp_frame(US, THEM, 80, 5000);
        assert_eq!(m.transmit(send, &frame).err(), Some(TxError::BadCapability));
        // Kernel can always reap.
        let (id2, ..) = m.create_channel(OwnerTag(3), &spec(), template(), 4, 2048);
        assert!(m.destroy_channel(id2, OwnerTag(0)));
    }

    #[test]
    fn oversized_frame_dropped_not_truncated() {
        let mut m = NetIoModule::new();
        let (id, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 4, 48);
        m.activate(id);
        let frame = tcp_frame(THEM, US, 5000, 80); // 55 bytes > 48-byte slots
        assert_eq!(m.deliver_software(&frame), Delivery::Dropped);
    }

    #[test]
    fn wakeup_lifecycle_batches_across_processing() {
        let mut m = NetIoModule::new();
        let (_, _send, recv, _) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(ChannelId(0));
        let frame = tcp_frame(THEM, US, 5000, 80);
        // First packet signals; the library starts its wakeup.
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { signal: true, .. }
        ));
        let batch1 = m.consume_batch(recv).unwrap();
        assert_eq!(batch1.len(), 1);
        // While processing, two more arrive: neither signals.
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { signal: false, .. }
        ));
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { signal: false, .. }
        ));
        // The wakeup ends with packets still queued: keep going.
        assert!(!m.end_wakeup(recv).unwrap());
        let batch2 = m.consume_batch(recv).unwrap();
        assert_eq!(batch2.len(), 2);
        // Now the ring is empty: the thread blocks again...
        assert!(m.end_wakeup(recv).unwrap());
        // ...and the next packet posts a fresh signal.
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { signal: true, .. }
        ));
    }

    #[test]
    fn wakeup_api_enforces_rights() {
        let mut m = NetIoModule::new();
        let (_, send, _recv, _) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        assert!(m.consume_batch(send).is_err());
        assert!(m.end_wakeup(send).is_err());
    }

    fn wildcard_spec(port: u16) -> DemuxSpec {
        DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Tcp,
            local_ip: US,
            local_port: port,
            remote_ip: None,
            remote_port: None,
        }
    }

    #[test]
    fn exact_binding_takes_flow_table_path() {
        let mut m = NetIoModule::new();
        let (id, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(id);
        assert_eq!(m.flow_table_len(), 1);
        let frame = tcp_frame(THEM, US, 5000, 80);
        match m.deliver_software(&frame) {
            Delivery::Channel {
                id: did,
                path,
                filter_instrs,
                ..
            } => {
                assert_eq!(did, id);
                assert_eq!(path, DemuxPath::FlowTable);
                // Scan-equivalent modeled cost: this channel's own program.
                assert_eq!(filter_instrs, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = m.demux_stats();
        assert_eq!((s.flow_hits, s.scan_fallbacks, s.packets), (1, 0, 1));
    }

    #[test]
    fn lower_id_wildcard_shadows_flow_hit() {
        // Channel 0: wildcard listener on port 80. Channel 1: exact binding
        // for the same traffic. A scan visits id 0 first, so the wildcard
        // must win even though the flow table knows channel 1.
        let mut m = NetIoModule::new();
        let (wild, ..) = m.create_channel(OwnerTag(1), &wildcard_spec(80), template(), 8, 2048);
        let (exact, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(wild);
        m.activate(exact);
        let frame = tcp_frame(THEM, US, 5000, 80);
        match m.deliver_software(&frame) {
            Delivery::Channel { id, path, .. } => {
                assert_eq!(id, wild, "scan order must win");
                assert_eq!(path, DemuxPath::FilterScan);
            }
            other => panic!("unexpected {other:?}"),
        }
        // With the wildcard torn down, the exact binding takes over on the
        // fast path.
        assert!(m.destroy_channel(wild, OwnerTag(1)));
        match m.deliver_software(&frame) {
            Delivery::Channel { id, path, .. } => {
                assert_eq!(id, exact);
                assert_eq!(path, DemuxPath::FlowTable);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn higher_id_wildcard_does_not_preempt_flow_hit() {
        let mut m = NetIoModule::new();
        let (exact, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        let (wild, ..) = m.create_channel(OwnerTag(1), &wildcard_spec(80), template(), 8, 2048);
        m.activate(exact);
        m.activate(wild);
        let frame = tcp_frame(THEM, US, 5000, 80);
        match m.deliver_software(&frame) {
            Delivery::Channel { id, path, .. } => {
                assert_eq!(id, exact);
                assert_eq!(path, DemuxPath::FlowTable);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_keys_resolve_to_lowest_active_id() {
        let mut m = NetIoModule::new();
        let (a, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        let (b, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        assert_eq!(m.flow_table_len(), 2);
        // Only the higher id is active: it receives.
        m.activate(b);
        let frame = tcp_frame(THEM, US, 5000, 80);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { id, .. } if id == b
        ));
        // Both active: the scan winner is the lower id.
        m.activate(a);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { id, .. } if id == a
        ));
        assert!(m.destroy_channel(a, OwnerTag(1)));
        assert_eq!(m.flow_table_len(), 1);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { id, .. } if id == b
        ));
    }

    #[test]
    fn fragment_falls_back_to_scan_tier() {
        use unp_wire::Ipv4Repr;
        let mut m = NetIoModule::new();
        let (id, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(id);
        // A non-first fragment has no flow identity and no transport
        // header: the exact binding rejects it, and it lands on the kernel
        // default path via the scan tier.
        let ip = Ipv4Repr {
            frag_offset: 64,
            ..Ipv4Repr::simple(THEM, US, IpProtocol::Tcp, 8)
        };
        let frame = Frame::from_vec(
            EthernetRepr {
                dst: MacAddr::from_host_index(OUR_MAC_IDX),
                src: MacAddr::from_host_index(THEIR_MAC_IDX),
                ethertype: EtherType::Ipv4,
            }
            .build_frame(&ip.build_packet(&[0u8; 8])),
        );
        match m.deliver_software(&frame) {
            Delivery::KernelDefault { path, .. } => assert_eq!(path, DemuxPath::FilterScan),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reclaim_owner_sweeps_only_that_owners_channels() {
        let mut m = NetIoModule::new();
        let (dead1, ..) = m.create_channel(OwnerTag(7), &spec(), template(), 8, 2048);
        let (alive, ..) = m.create_channel(OwnerTag(8), &wildcard_spec(81), template(), 8, 2048);
        let (dead2, ..) = m.create_channel(OwnerTag(7), &wildcard_spec(82), template(), 8, 2048);
        m.activate(alive);
        let reclaimed = m.reclaim_owner(OwnerTag(7));
        let ids: Vec<ChannelId> = reclaimed.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![dead1, dead2]);
        assert_eq!(m.channel_count(), 1);
        assert_eq!(m.flow_table_len(), 0, "dead flow entry swept");
        // The survivor still receives.
        let frame = tcp_frame(THEM, US, 5000, 81);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { id, .. } if id == alive
        ));
        assert!(m.reclaim_owner(OwnerTag(7)).is_empty(), "idempotent");
    }

    #[test]
    fn pressure_cap_sheds_at_reduced_capacity() {
        let mut m = NetIoModule::new();
        let (id, _, recv, _) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        m.activate(id);
        m.set_pressure_cap(Some(1));
        let frame = tcp_frame(THEM, US, 5000, 80);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { .. }
        ));
        assert_eq!(m.deliver_software(&frame), Delivery::Dropped);
        // Lifting the pressure restores the configured capacity.
        m.set_pressure_cap(None);
        assert!(matches!(
            m.deliver_software(&frame),
            Delivery::Channel { .. }
        ));
        assert_eq!(m.consume(recv).unwrap().len(), 2);
    }

    #[test]
    fn classify_agrees_with_scan_reference() {
        let mut m = NetIoModule::new();
        let (a, ..) = m.create_channel(OwnerTag(1), &spec(), template(), 8, 2048);
        let (b, ..) = m.create_channel(OwnerTag(1), &wildcard_spec(81), template(), 8, 2048);
        m.activate(a);
        m.activate(b);
        for frame in [
            tcp_frame(THEM, US, 5000, 80),
            tcp_frame(THEM, US, 5000, 81),
            tcp_frame(THEM, US, 5001, 80),
            tcp_frame(US, THEM, 80, 5000),
        ] {
            let (fast, fast_instrs, _) = m.classify(&frame);
            let (slow, slow_instrs) = m.classify_scan_reference(&frame);
            assert_eq!(fast, slow);
            assert_eq!(fast_instrs, slow_instrs, "modeled cost must match scan");
        }
    }
}
