//! Header templates: the transmit-side protection mechanism.
//!
//! "Impersonation is prevented by associating a header template with a send
//! capability. When the network I/O module receives packets to be
//! transmitted, it matches fields in the template against the packet
//! header." The checks are "similar to those needed for address
//! demultiplexing on incoming network packets" and deliberately violate
//! strict layering — "we regard this as an acceptable cost for the benefit
//! it provides" (paper §3.4).

use unp_wire::{EtherType, IpProtocol, Ipv4Addr, MacAddr};

/// Why a frame failed its template check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateViolation {
    /// Frame shorter than the required headers.
    Truncated,
    /// Source MAC does not match.
    SrcMac,
    /// Destination MAC does not match.
    DstMac,
    /// EtherType mismatch.
    EtherType,
    /// Not a well-formed IPv4 header.
    BadIp,
    /// IP protocol mismatch.
    Protocol,
    /// Source IP mismatch (impersonation attempt).
    SrcIp,
    /// Destination IP mismatch.
    DstIp,
    /// Source port mismatch.
    SrcPort,
    /// Destination port mismatch.
    DstPort,
    /// AN1 buffer-queue-index mismatch.
    Bqi,
}

/// The constraint set bound to one send capability.
#[derive(Debug, Clone)]
pub struct HeaderTemplate {
    /// Link header length (14 Ethernet, 16 AN1).
    pub link_header_len: usize,
    /// Required source station, if pinned.
    pub src_mac: Option<MacAddr>,
    /// Required destination station, if pinned (connection-oriented
    /// traffic pins it; `None` allows e.g. gateway rewrite).
    pub dst_mac: Option<MacAddr>,
    /// Required EtherType.
    pub ethertype: EtherType,
    /// Required IP protocol.
    pub protocol: IpProtocol,
    /// Required source address (the endpoint's own).
    pub src_ip: Ipv4Addr,
    /// Required destination address (the connection's peer).
    pub dst_ip: Ipv4Addr,
    /// Required source port.
    pub src_port: u16,
    /// Required destination port (None for connectionless sends).
    pub dst_port: Option<u16>,
    /// AN1 only: the BQI the library must stamp in the link header — the
    /// value the peer's registry conveyed at connection setup.
    pub bqi: Option<u16>,
}

impl HeaderTemplate {
    /// Verifies a complete outgoing frame. A handful of field compares —
    /// "usually, this code segment is quite short."
    pub fn check(&self, frame: &[u8]) -> Result<(), TemplateViolation> {
        let l = self.link_header_len;
        if frame.len() < l + 20 + 4 {
            return Err(TemplateViolation::Truncated);
        }
        if let Some(dst) = self.dst_mac {
            if frame[0..6] != dst.0 {
                return Err(TemplateViolation::DstMac);
            }
        }
        if let Some(src) = self.src_mac {
            if frame[6..12] != src.0 {
                return Err(TemplateViolation::SrcMac);
            }
        }
        let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
        if ethertype != self.ethertype.to_u16() {
            return Err(TemplateViolation::EtherType);
        }
        if let Some(want_bqi) = self.bqi {
            // The BQI field sits at offset 14 of the AN1 header.
            if l < 16 {
                return Err(TemplateViolation::Bqi);
            }
            let bqi = u16::from_be_bytes([frame[14], frame[15]]);
            if bqi != want_bqi {
                return Err(TemplateViolation::Bqi);
            }
        }
        let ip = &frame[l..];
        if ip[0] >> 4 != 4 {
            return Err(TemplateViolation::BadIp);
        }
        let ihl = usize::from(ip[0] & 0x0f) * 4;
        if ihl < 20 || ip.len() < ihl + 4 {
            return Err(TemplateViolation::BadIp);
        }
        if ip[9] != self.protocol.to_u8() {
            return Err(TemplateViolation::Protocol);
        }
        if ip[12..16] != self.src_ip.0 {
            return Err(TemplateViolation::SrcIp);
        }
        if ip[16..20] != self.dst_ip.0 {
            return Err(TemplateViolation::DstIp);
        }
        // Port checks apply only to first fragments (later fragments carry
        // no transport header — and only first fragments can be emitted
        // with ports anyway).
        let frag_off = u16::from_be_bytes([ip[6], ip[7]]) & 0x1fff;
        if frag_off == 0 {
            let sport = u16::from_be_bytes([ip[ihl], ip[ihl + 1]]);
            if sport != self.src_port {
                return Err(TemplateViolation::SrcPort);
            }
            if let Some(dp) = self.dst_port {
                let dport = u16::from_be_bytes([ip[ihl + 2], ip[ihl + 3]]);
                if dport != dp {
                    return Err(TemplateViolation::DstPort);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unp_wire::{An1Repr, EthernetRepr, Ipv4Repr, UdpRepr};

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn eth_template() -> HeaderTemplate {
        HeaderTemplate {
            link_header_len: 14,
            src_mac: Some(MacAddr::from_host_index(1)),
            dst_mac: Some(MacAddr::from_host_index(2)),
            ethertype: EtherType::Ipv4,
            protocol: IpProtocol::Udp,
            src_ip: SRC,
            dst_ip: DST,
            src_port: 1000,
            dst_port: Some(53),
            bqi: None,
        }
    }

    fn udp_eth_frame(src_ip: Ipv4Addr, sport: u16, dport: u16) -> Vec<u8> {
        let d = UdpRepr {
            src_port: sport,
            dst_port: dport,
        }
        .build_datagram(src_ip, DST, b"x");
        let ip = Ipv4Repr::simple(src_ip, DST, IpProtocol::Udp, d.len());
        EthernetRepr {
            dst: MacAddr::from_host_index(2),
            src: MacAddr::from_host_index(1),
            ethertype: EtherType::Ipv4,
        }
        .build_frame(&ip.build_packet(&d))
    }

    #[test]
    fn conforming_frame_passes() {
        assert_eq!(eth_template().check(&udp_eth_frame(SRC, 1000, 53)), Ok(()));
    }

    #[test]
    fn each_field_violation_detected() {
        let t = eth_template();
        assert_eq!(
            t.check(&udp_eth_frame(Ipv4Addr::new(9, 9, 9, 9), 1000, 53)),
            Err(TemplateViolation::SrcIp)
        );
        assert_eq!(
            t.check(&udp_eth_frame(SRC, 1001, 53)),
            Err(TemplateViolation::SrcPort)
        );
        assert_eq!(
            t.check(&udp_eth_frame(SRC, 1000, 54)),
            Err(TemplateViolation::DstPort)
        );
        assert_eq!(t.check(&[0u8; 10]), Err(TemplateViolation::Truncated));
    }

    #[test]
    fn wrong_macs_and_ethertype_detected() {
        let t = eth_template();
        let mut f = udp_eth_frame(SRC, 1000, 53);
        f[6] ^= 0xff;
        assert_eq!(t.check(&f), Err(TemplateViolation::SrcMac));
        let mut f = udp_eth_frame(SRC, 1000, 53);
        f[0] ^= 0xff;
        assert_eq!(t.check(&f), Err(TemplateViolation::DstMac));
        let mut f = udp_eth_frame(SRC, 1000, 53);
        f[13] = 0x06;
        assert_eq!(t.check(&f), Err(TemplateViolation::EtherType));
    }

    #[test]
    fn an1_bqi_enforced() {
        let t = HeaderTemplate {
            link_header_len: 18,
            bqi: Some(5),
            src_mac: None,
            dst_mac: None,
            ..eth_template()
        };
        let build = |bqi: u16| {
            let d = UdpRepr {
                src_port: 1000,
                dst_port: 53,
            }
            .build_datagram(SRC, DST, b"x");
            let ip = Ipv4Repr::simple(SRC, DST, IpProtocol::Udp, d.len());
            An1Repr {
                dst: MacAddr::from_host_index(2),
                src: MacAddr::from_host_index(1),
                ethertype: EtherType::Ipv4,
                bqi,
                announce: 0,
            }
            .build_frame(&ip.build_packet(&d))
        };
        assert_eq!(t.check(&build(5)), Ok(()));
        assert_eq!(t.check(&build(6)), Err(TemplateViolation::Bqi));
        // Forging BQI 0 (kernel memory) is also refused.
        assert_eq!(t.check(&build(0)), Err(TemplateViolation::Bqi));
    }

    #[test]
    fn wildcard_dst_port_allows_any() {
        let t = HeaderTemplate {
            dst_port: None,
            ..eth_template()
        };
        assert_eq!(t.check(&udp_eth_frame(SRC, 1000, 53)), Ok(()));
        assert_eq!(t.check(&udp_eth_frame(SRC, 1000, 9999)), Ok(()));
    }
}
