//! Property-based tests: the TCP invariant that matters — the byte stream
//! delivered equals the byte stream sent, exactly once, in order — must
//! survive loss, duplication, reordering, and corruption.

#![allow(clippy::field_reassign_with_default)] // cfg tweaking reads better this way

use proptest::prelude::*;

use unp_tcp::loopback::{ChannelModel, Loopback, Side};
use unp_tcp::{CongestionControl, State, TcpConfig};

fn transfer_intact(
    data_a: &[u8],
    data_b: &[u8],
    chan: ChannelModel,
    cfg: TcpConfig,
) -> Result<(), String> {
    let mut lb = Loopback::new(cfg.clone(), cfg, chan);
    lb.send(Side::A, data_a);
    lb.send(Side::B, data_b);
    lb.close(Side::A);
    lb.close(Side::B);
    let done = lb.run_until(2_000_000, |lb| {
        lb.received(Side::B).len() == data_a.len()
            && lb.received(Side::A).len() == data_b.len()
            && lb.events(Side::A).peer_closed
            && lb.events(Side::B).peer_closed
    });
    if !done {
        return Err(format!(
            "stalled: B got {}/{} A got {}/{} states {:?}/{:?}",
            lb.received(Side::B).len(),
            data_a.len(),
            lb.received(Side::A).len(),
            data_b.len(),
            lb.state(Side::A),
            lb.state(Side::B),
        ));
    }
    if lb.received(Side::B) != data_a {
        return Err("A→B stream corrupted".into());
    }
    if lb.received(Side::A) != data_b {
        return Err("B→A stream corrupted".into());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bidirectional transfer over a hostile channel delivers both streams
    /// intact and both sides learn of the close.
    #[test]
    fn streams_intact_under_impairment(
        seed in 1u64..10_000,
        loss in 0.0f64..0.15,
        len_a in 0usize..20_000,
        len_b in 0usize..5_000,
    ) {
        let data_a: Vec<u8> = (0..len_a).map(|i| (i as u64 * 31 + seed) as u8).collect();
        let data_b: Vec<u8> = (0..len_b).map(|i| (i as u64 * 17 + seed) as u8).collect();
        let chan = ChannelModel::lossy(seed, loss);
        transfer_intact(&data_a, &data_b, chan, TcpConfig::default())
            .map_err(TestCaseError::fail)?;
    }

    /// The same invariant holds with congestion control enabled.
    #[test]
    fn streams_intact_with_congestion_control(
        seed in 1u64..10_000,
        reno in proptest::bool::ANY,
        len in 1usize..30_000,
    ) {
        let mut cfg = TcpConfig::default();
        cfg.congestion = if reno { CongestionControl::Reno } else { CongestionControl::Tahoe };
        let data: Vec<u8> = (0..len).map(|i| (i as u64 ^ seed) as u8).collect();
        let chan = ChannelModel::lossy(seed, 0.08);
        transfer_intact(&data, &[], chan, cfg).map_err(TestCaseError::fail)?;
    }

    /// Tiny receive buffers (heavy zero-window episodes) never deadlock.
    #[test]
    fn tiny_windows_never_deadlock(
        seed in 1u64..1000,
        len in 1usize..8_000,
    ) {
        let mut cfg = TcpConfig::default();
        cfg.recv_buf = 1024;
        cfg.send_buf = 1024;
        let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
        let chan = ChannelModel::lossy(seed, 0.02);
        transfer_intact(&data, &[], chan, cfg).map_err(TestCaseError::fail)?;
    }

    /// On a clean channel the connection always reaches a fully closed
    /// state on both sides (via TIME_WAIT on one of them), with no stuck
    /// timers.
    #[test]
    fn clean_close_always_terminates(
        len in 0usize..5_000,
        close_a_first in proptest::bool::ANY,
    ) {
        let data: Vec<u8> = vec![7; len];
        let mut lb = Loopback::new(
            TcpConfig::default(),
            TcpConfig::default(),
            ChannelModel::clean(),
        );
        lb.send(Side::A, &data);
        if close_a_first {
            lb.close(Side::A);
            lb.run(100);
            lb.close(Side::B);
        } else {
            lb.close(Side::B);
            lb.run(100);
            lb.close(Side::A);
        }
        let done = lb.run_until(1_000_000, |lb| {
            lb.state(Side::A) == State::Closed && lb.state(Side::B) == State::Closed
        });
        prop_assert!(done, "close dance stalled: {:?}/{:?}",
            lb.state(Side::A), lb.state(Side::B));
        prop_assert_eq!(lb.received(Side::B).len(), len);
    }
}
