//! Property-based tests: the TCP invariant that matters — the byte stream
//! delivered equals the byte stream sent, exactly once, in order — must
//! survive loss, duplication, reordering, and corruption.

#![allow(clippy::field_reassign_with_default)] // cfg tweaking reads better this way

use proptest::prelude::*;

use unp_tcp::loopback::{ChannelModel, DirFaults, Loopback, Side};
use unp_tcp::{CongestionControl, State, TcpConfig};

fn transfer_intact(
    data_a: &[u8],
    data_b: &[u8],
    chan: ChannelModel,
    cfg: TcpConfig,
) -> Result<(), String> {
    let mut lb = Loopback::new(cfg.clone(), cfg, chan);
    lb.send(Side::A, data_a);
    lb.send(Side::B, data_b);
    lb.close(Side::A);
    lb.close(Side::B);
    let done = lb.run_until(2_000_000, |lb| {
        lb.received(Side::B).len() == data_a.len()
            && lb.received(Side::A).len() == data_b.len()
            && lb.events(Side::A).peer_closed
            && lb.events(Side::B).peer_closed
    });
    if !done {
        return Err(format!(
            "stalled: B got {}/{} A got {}/{} states {:?}/{:?}",
            lb.received(Side::B).len(),
            data_a.len(),
            lb.received(Side::A).len(),
            data_b.len(),
            lb.state(Side::A),
            lb.state(Side::B),
        ));
    }
    if lb.received(Side::B) != data_a {
        return Err("A→B stream corrupted".into());
    }
    if lb.received(Side::A) != data_b {
        return Err("B→A stream corrupted".into());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bidirectional transfer over a hostile channel delivers both streams
    /// intact and both sides learn of the close.
    #[test]
    fn streams_intact_under_impairment(
        seed in 1u64..10_000,
        loss in 0.0f64..0.15,
        len_a in 0usize..20_000,
        len_b in 0usize..5_000,
    ) {
        let data_a: Vec<u8> = (0..len_a).map(|i| (i as u64 * 31 + seed) as u8).collect();
        let data_b: Vec<u8> = (0..len_b).map(|i| (i as u64 * 17 + seed) as u8).collect();
        let chan = ChannelModel::lossy(seed, loss);
        transfer_intact(&data_a, &data_b, chan, TcpConfig::default())
            .map_err(TestCaseError::fail)?;
    }

    /// The same invariant holds with congestion control enabled.
    #[test]
    fn streams_intact_with_congestion_control(
        seed in 1u64..10_000,
        reno in proptest::bool::ANY,
        len in 1usize..30_000,
    ) {
        let mut cfg = TcpConfig::default();
        cfg.congestion = if reno { CongestionControl::Reno } else { CongestionControl::Tahoe };
        let data: Vec<u8> = (0..len).map(|i| (i as u64 ^ seed) as u8).collect();
        let chan = ChannelModel::lossy(seed, 0.08);
        transfer_intact(&data, &[], chan, cfg).map_err(TestCaseError::fail)?;
    }

    /// Tiny receive buffers (heavy zero-window episodes) never deadlock.
    #[test]
    fn tiny_windows_never_deadlock(
        seed in 1u64..1000,
        len in 1usize..8_000,
    ) {
        let mut cfg = TcpConfig::default();
        cfg.recv_buf = 1024;
        cfg.send_buf = 1024;
        let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
        let chan = ChannelModel::lossy(seed, 0.02);
        transfer_intact(&data, &[], chan, cfg).map_err(TestCaseError::fail)?;
    }

    /// On a clean channel the connection always reaches a fully closed
    /// state on both sides (via TIME_WAIT on one of them), with no stuck
    /// timers.
    #[test]
    fn clean_close_always_terminates(
        len in 0usize..5_000,
        close_a_first in proptest::bool::ANY,
    ) {
        let data: Vec<u8> = vec![7; len];
        let mut lb = Loopback::new(
            TcpConfig::default(),
            TcpConfig::default(),
            ChannelModel::clean(),
        );
        lb.send(Side::A, &data);
        if close_a_first {
            lb.close(Side::A);
            lb.run(100);
            lb.close(Side::B);
        } else {
            lb.close(Side::B);
            lb.run(100);
            lb.close(Side::A);
        }
        let done = lb.run_until(1_000_000, |lb| {
            lb.state(Side::A) == State::Closed && lb.state(Side::B) == State::Closed
        });
        prop_assert!(done, "close dance stalled: {:?}/{:?}",
            lb.state(Side::A), lb.state(Side::B));
        prop_assert_eq!(lb.received(Side::B).len(), len);
    }

    /// Asymmetric impairment — a nearly clean forward path under a much
    /// more hostile reverse (ACK) path, so loss concentrates on the
    /// acknowledgment stream — still delivers both byte streams intact.
    #[test]
    fn streams_intact_under_asymmetric_impairment(
        seed in 1u64..10_000,
        fwd_loss in 0.0f64..0.05,
        rev_loss in 0.05f64..0.2,
        len_a in 1usize..15_000,
        len_b in 0usize..4_000,
    ) {
        let data_a: Vec<u8> = (0..len_a).map(|i| (i as u64 * 13 + seed) as u8).collect();
        let data_b: Vec<u8> = (0..len_b).map(|i| (i as u64 * 29 + seed) as u8).collect();
        let chan = ChannelModel::lossy(seed, fwd_loss)
            .with_reverse(DirFaults::lossy(rev_loss));
        transfer_intact(&data_a, &data_b, chan, TcpConfig::default())
            .map_err(TestCaseError::fail)?;
    }

    /// A mid-transfer outage window (burst loss: every segment in the
    /// window vanishes, both directions) delays but never breaks the
    /// transfer — retransmission resumes the stream once the window ends.
    #[test]
    fn streams_survive_outage_window(
        seed in 1u64..10_000,
        start_ms in 5u64..50,
        dur_ms in 1u64..200,
        len in 1usize..15_000,
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i as u64 * 7 + seed) as u8).collect();
        let start = start_ms * 1_000_000;
        let chan = ChannelModel::lossy(seed, 0.02)
            .with_outage(start, start + dur_ms * 1_000_000);
        transfer_intact(&data, &[], chan, TcpConfig::default())
            .map_err(TestCaseError::fail)?;
    }
}

/// The outage window must actually swallow traffic (not just sit outside
/// the transfer) for the property above to mean anything.
#[test]
fn outage_window_actually_drops_segments() {
    // The loopback channel has latency but no bandwidth model, so a clean
    // transfer completes within a few 100 µs round trips: the window must
    // open mid-handshake-plus-one-RTT to intersect live traffic.
    let data: Vec<u8> = (0..20_000).map(|i| i as u8).collect();
    let chan = ChannelModel::clean().with_outage(250_000, 2_000_000);
    let mut lb = Loopback::new(TcpConfig::default(), TcpConfig::default(), chan);
    lb.send(Side::A, &data);
    lb.close(Side::A);
    lb.close(Side::B);
    let done = lb.run_until(2_000_000, |lb| {
        lb.received(Side::B).len() == data.len()
            && lb.events(Side::A).peer_closed
            && lb.events(Side::B).peer_closed
    });
    assert!(done, "transfer must recover after the outage");
    assert!(lb.outage_drops > 0, "window never intersected traffic");
    assert_eq!(lb.received(Side::B), &data[..]);
}

/// A fully jammed reverse path stalls the transfer (no ACK ever returns);
/// lifting the override is what lets it complete — the asymmetric knob
/// really steers one direction only.
#[test]
fn fully_lossy_reverse_path_blocks_progress() {
    let data = vec![9u8; 4000];
    let chan = ChannelModel::clean().with_reverse(DirFaults {
        loss: 1.0,
        duplicate: 0.0,
        corrupt: 0.0,
    });
    let mut lb = Loopback::new(TcpConfig::default(), TcpConfig::default(), chan);
    // B's SYN-ACK travels B→A and is always lost: the handshake can
    // never complete, while A's side keeps retrying forward.
    lb.send(Side::A, &data);
    let connected = lb.run_until(50_000, |lb| lb.events(Side::A).connected);
    assert!(!connected, "no ACK path, yet the handshake completed");
    assert!(lb.received(Side::B).is_empty());
}
