//! State-machine conformance tests driven through the loopback harness and
//! direct TCB manipulation: connection establishment variants, close
//! orders, RST handling, and protocol details (MSS, Nagle, delayed ACK,
//! persist, retransmission).

#![allow(clippy::field_reassign_with_default)] // cfg tweaking reads better this way

use unp_tcp::loopback::{ChannelModel, Loopback, Side};
use unp_tcp::{CongestionControl, State, Tcb, TcpAction, TcpConfig, TcpTimer};
use unp_wire::{Ipv4Addr, SeqNum, TcpFlags, TcpRepr};

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn established_pair() -> Loopback {
    let mut lb = Loopback::new(
        TcpConfig::default(),
        TcpConfig::default(),
        ChannelModel::clean(),
    );
    assert!(lb.run_until(200, |lb| {
        lb.state(Side::A) == State::Established && lb.state(Side::B) == State::Established
    }));
    lb
}

#[test]
fn mss_negotiated_from_syn_options() {
    let mut cfg_a = TcpConfig::default();
    cfg_a.mss_local = 1460;
    let mut cfg_b = TcpConfig::default();
    cfg_b.mss_local = 512;
    let mut lb = Loopback::new(cfg_a, cfg_b, ChannelModel::clean());
    lb.run_until(200, |lb| lb.state(Side::A) == State::Established);
    // Each side sends min(peer advertised, own limit).
    assert_eq!(lb.tcb(Side::A).unwrap().mss(), 512);
    assert_eq!(lb.tcb(Side::B).unwrap().mss(), 512);
}

#[test]
fn large_transfer_segments_at_mss() {
    let mut lb = established_pair();
    let data = vec![0x5a; 10_000];
    lb.send(Side::A, &data);
    assert!(lb.run_until(5000, |lb| lb.received(Side::B).len() == data.len()));
    assert_eq!(lb.received(Side::B), &data[..]);
    // ~7 full segments plus handshake traffic; no retransmissions needed.
    assert_eq!(lb.tcb(Side::A).unwrap().stats().bytes_rexmit, 0);
}

#[test]
fn close_initiated_by_passive_side() {
    let mut lb = established_pair();
    lb.send(Side::B, b"server speaks first");
    lb.run_until(500, |lb| !lb.received(Side::A).is_empty());
    lb.close(Side::B);
    assert!(lb.run_until(1000, |lb| lb.events(Side::A).peer_closed));
    lb.close(Side::A);
    // A closed second (LAST-ACK path) and fully closes; B, who closed
    // first, holds TIME_WAIT for 2·MSL.
    assert!(lb.run_until(1000, |lb| lb.state(Side::A) == State::Closed));
    assert!(lb.run_until(1000, |lb| lb.state(Side::B) == State::TimeWait));
}

#[test]
fn simultaneous_close_goes_through_closing() {
    let mut lb = established_pair();
    // Both close before seeing the other's FIN: with channel latency the
    // FINs cross.
    lb.close(Side::A);
    lb.close(Side::B);
    // Both sides should end closed (via CLOSING → TIME_WAIT → CLOSED).
    assert!(lb.run_until(5000, |lb| lb.state(Side::A) == State::Closed
        && lb.state(Side::B) == State::Closed));
}

#[test]
fn abort_sends_rst_and_peer_observes_reset() {
    let mut lb = established_pair();
    lb.send(Side::A, b"doomed");
    lb.run_until(500, |lb| !lb.received(Side::B).is_empty());
    lb.abort(Side::A);
    assert_eq!(lb.state(Side::A), State::Closed);
    assert!(lb.run_until(1000, |lb| lb.events(Side::B).reset));
    assert_eq!(lb.state(Side::B), State::Closed);
}

#[test]
fn data_queued_before_establishment_flows_after() {
    let mut lb = Loopback::new(
        TcpConfig::default(),
        TcpConfig::default(),
        ChannelModel::clean(),
    );
    // Write while the handshake is still in flight.
    lb.send(Side::A, b"early bird");
    assert!(lb.run_until(1000, |lb| lb.received(Side::B) == b"early bird"));
}

#[test]
fn syn_retransmitted_when_lost() {
    // Drop the first two segments deterministically via heavy loss early:
    // use a seed where the SYN is lost; verify connection still forms via
    // RTO-driven SYN retransmission.
    for seed in 1..20 {
        let chan = ChannelModel {
            loss: 0.4,
            ..ChannelModel::lossy(seed, 0.4)
        };
        let mut lb = Loopback::new(TcpConfig::default(), TcpConfig::default(), chan);
        assert!(
            lb.run_until(20_000, |lb| lb.state(Side::A) == State::Established
                && lb.state(Side::B) == State::Established),
            "handshake never completed for seed {seed}"
        );
    }
}

#[test]
fn zero_window_then_reopen_uses_persist_probe() {
    let mut cfg_b = TcpConfig::default();
    cfg_b.recv_buf = 2048; // small receive buffer to force zero window
    let mut lb = Loopback::new(TcpConfig::default(), cfg_b, ChannelModel::clean());
    lb.run_until(200, |lb| lb.state(Side::A) == State::Established);
    // The harness auto-drains reads, so the window reopens as data flows;
    // the transfer must complete regardless of the tiny window.
    let data: Vec<u8> = (0..20_000u32).map(|i| (i % 255) as u8).collect();
    lb.send(Side::A, &data);
    assert!(lb.run_until(50_000, |lb| lb.received(Side::B).len() == data.len()));
    assert_eq!(lb.received(Side::B), &data[..]);
}

#[test]
fn nagle_coalesces_small_writes() {
    let mut lb = established_pair();
    let before = lb.segments_carried;
    // 100 one-byte writes; Nagle should coalesce most into few segments.
    for _ in 0..100 {
        lb.send(Side::A, b"x");
    }
    lb.run_until(5000, |lb| lb.received(Side::B).len() == 100);
    let data_segments = lb.segments_carried - before;
    assert!(
        data_segments < 60,
        "expected Nagle coalescing, saw {data_segments} segments"
    );
}

#[test]
fn no_nagle_sends_immediately() {
    let mut lb = Loopback::new(
        TcpConfig::low_latency(),
        TcpConfig::low_latency(),
        ChannelModel::clean(),
    );
    lb.run_until(200, |lb| lb.state(Side::A) == State::Established);
    let before = lb.segments_carried;
    for _ in 0..10 {
        lb.send(Side::A, b"y");
        lb.run(50);
    }
    lb.run_until(2000, |lb| lb.received(Side::B).len() == 10);
    let segs = lb.segments_carried - before;
    // Each write should have left promptly: ≥ 10 data segments (plus ACKs).
    assert!(segs >= 20, "expected immediate sends, saw {segs} segments");
}

#[test]
fn delayed_ack_reduces_ack_traffic() {
    let run = |delayed: bool| {
        let mut cfg = TcpConfig::default();
        cfg.delayed_ack = delayed;
        let mut lb = Loopback::new(cfg.clone(), cfg, ChannelModel::clean());
        lb.run_until(200, |lb| lb.state(Side::A) == State::Established);
        let before = lb.segments_carried;
        lb.send(Side::A, &vec![0u8; 14600]); // 10 MSS
        lb.run_until(5000, |lb| lb.received(Side::B).len() == 14600);
        lb.segments_carried - before
    };
    let with_delack = run(true);
    let without = run(false);
    assert!(
        with_delack < without,
        "delayed ACK should reduce segments: {with_delack} vs {without}"
    );
}

#[test]
fn rst_to_closed_port_shape() {
    // A SYN to a dead endpoint: verify the RST builder's fields per RFC 793.
    let syn = TcpRepr {
        src_port: 1234,
        dst_port: 80,
        seq: SeqNum(555),
        ack_num: SeqNum(0),
        flags: TcpFlags::SYN,
        window: 100,
        mss: None,
    };
    let rst = Tcb::rst_for((B, 80), &syn, 0);
    assert!(rst.flags.rst && rst.flags.ack);
    assert_eq!(rst.seq, SeqNum(0));
    assert_eq!(rst.ack_num, SeqNum(556)); // seq + 1 for the SYN
    assert_eq!(rst.src_port, 80);
    assert_eq!(rst.dst_port, 1234);

    // An ACK-bearing offender: RST takes its ack as seq.
    let stray = TcpRepr {
        flags: TcpFlags::ack(),
        ack_num: SeqNum(9999),
        ..syn
    };
    let rst2 = Tcb::rst_for((B, 80), &stray, 0);
    assert!(rst2.flags.rst && !rst2.flags.ack);
    assert_eq!(rst2.seq, SeqNum(9999));
}

#[test]
fn retransmission_gives_up_and_resets() {
    let mut cfg = TcpConfig::default();
    cfg.max_retransmits = 3;
    // 100% loss after establishment is impossible with the harness model,
    // so instead connect, then drop everything.
    let chan = ChannelModel {
        loss: 1.0,
        ..ChannelModel::clean()
    };
    // With total loss even the SYN dies: A must eventually give up.
    let mut lb = Loopback::new(cfg, TcpConfig::default(), chan);
    assert!(lb.run_until(100_000, |lb| lb.events(Side::A).reset
        || lb.state(Side::A) == State::Closed));
}

#[test]
fn direct_tcb_retransmit_timer_flow() {
    // Drive a TCB by hand to verify the action stream: connect emits SYN +
    // retransmit timer; firing the timer re-emits the SYN with backoff.
    let (mut tcb, actions) = Tcb::connect((A, 1), (B, 2), TcpConfig::default(), 100, 0);
    let sends: Vec<_> = actions
        .iter()
        .filter(|a| matches!(a, TcpAction::Send(..)))
        .collect();
    assert_eq!(sends.len(), 1);
    let TcpAction::Send(repr, _) = sends[0] else {
        unreachable!()
    };
    assert!(repr.flags.syn && !repr.flags.ack);
    assert_eq!(repr.mss, Some(1460));
    assert!(actions
        .iter()
        .any(|a| matches!(a, TcpAction::SetTimer(TcpTimer::Retransmit, _))));

    // Fire the retransmission timer.
    let actions = tcb.on_timer(TcpTimer::Retransmit, 1_000_000_000);
    let resyn = actions
        .iter()
        .any(|a| matches!(a, TcpAction::Send(r, _) if r.flags.syn));
    assert!(resyn, "SYN must be retransmitted: {actions:?}");
    assert_eq!(tcb.stats().rto_fires, 1);
}

#[test]
fn congestion_control_tahoe_and_reno_complete_transfers() {
    for cc in [CongestionControl::Tahoe, CongestionControl::Reno] {
        let mut cfg = TcpConfig::default();
        cfg.congestion = cc;
        let chan = ChannelModel::lossy(42, 0.05);
        let mut lb = Loopback::new(cfg.clone(), cfg, chan);
        let data: Vec<u8> = (0..30_000u32).map(|i| (i * 7 % 253) as u8).collect();
        lb.send(Side::A, &data);
        assert!(
            lb.run_until(500_000, |lb| lb.received(Side::B).len() == data.len()),
            "{cc:?} transfer stalled at {}",
            lb.received(Side::B).len()
        );
        assert_eq!(lb.received(Side::B), &data[..], "{cc:?} corrupted data");
    }
}

#[test]
fn fast_retransmit_fires_on_triple_dup_ack() {
    // Moderate loss forces holes; with enough data the receiver generates
    // dup ACKs and the sender should fast-retransmit at least once across
    // seeds.
    let mut total_fast = 0;
    for seed in 1..6 {
        let chan = ChannelModel {
            jitter: 0, // no reordering: dup acks mean loss
            ..ChannelModel::lossy(seed, 0.03)
        };
        let mut lb = Loopback::new(TcpConfig::default(), TcpConfig::default(), chan);
        let data = vec![1u8; 100_000];
        lb.send(Side::A, &data);
        assert!(lb.run_until(1_000_000, |lb| lb.received(Side::B).len() == data.len()));
        total_fast += lb.tcb(Side::A).unwrap().stats().fast_rexmit;
    }
    assert!(total_fast > 0, "fast retransmit never triggered");
}

#[test]
fn rtt_estimator_samples_during_transfer() {
    let mut lb = established_pair();
    lb.send(Side::A, &vec![0u8; 5000]);
    lb.run_until(5000, |lb| lb.received(Side::B).len() == 5000);
    let srtt = lb.tcb(Side::A).unwrap().srtt().expect("sampled");
    // Channel latency is 100 µs each way; SRTT should be in that ballpark.
    assert!(
        (100_000..2_000_000).contains(&srtt),
        "srtt {srtt} out of range"
    );
}

#[test]
fn send_after_close_rejected() {
    let mut lb = established_pair();
    lb.close(Side::A);
    lb.run(50);
    // Direct access: the TCB must refuse new data.
    // (The harness's send() would silently queue, so call the TCB.)
    let ep_state = lb.state(Side::A);
    assert!(matches!(ep_state, State::FinWait1 | State::FinWait2));
}
