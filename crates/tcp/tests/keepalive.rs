//! Keepalive tests: idle connections are probed; live peers answer and the
//! connection persists; dead peers cause a reset after the probe budget.

use unp_tcp::{State, Tcb, TcpAction, TcpConfig, TcpTimer};
use unp_wire::Ipv4Addr;

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const SEC: u64 = 1_000_000_000;

fn sends(actions: &[TcpAction]) -> Vec<(unp_wire::TcpRepr, Vec<u8>)> {
    actions
        .iter()
        .filter_map(|a| match a {
            TcpAction::Send(r, p) => Some((*r, p.clone())),
            _ => None,
        })
        .collect()
}

fn deliver(dst: &mut Tcb, actions: &[TcpAction], now: u64) -> Vec<TcpAction> {
    let mut out = Vec::new();
    for (repr, payload) in sends(actions) {
        out.extend(dst.on_segment(&repr, &payload, now));
    }
    out
}

fn keepalive_cfg() -> TcpConfig {
    TcpConfig {
        keepalive: Some(10 * SEC),
        max_keepalive_probes: 3,
        ..TcpConfig::default()
    }
}

fn established() -> (Tcb, Tcb) {
    let cfg = keepalive_cfg();
    let (mut a, syn) = Tcb::connect((A, 100), (B, 200), cfg.clone(), 1000, 0);
    let listener = unp_tcp::ListenTcb::new((B, 200), cfg);
    let (syn_repr, _) = sends(&syn)[0].clone();
    let (mut b, synack) = listener.on_syn((A, 100), &syn_repr, 9000, 0).unwrap();
    let ack = deliver(&mut a, &synack, SEC / 100);
    deliver(&mut b, &ack, SEC / 100);
    (a, b)
}

#[test]
fn establishment_arms_the_keepalive_timer() {
    let cfg = keepalive_cfg();
    let (mut a, syn) = Tcb::connect((A, 100), (B, 200), cfg.clone(), 1000, 0);
    let listener = unp_tcp::ListenTcb::new((B, 200), cfg);
    let (syn_repr, _) = sends(&syn)[0].clone();
    let (mut b, synack) = listener.on_syn((A, 100), &syn_repr, 9000, 0).unwrap();
    let ack = deliver(&mut a, &synack, SEC);
    // The active opener arms keepalive on reaching ESTABLISHED.
    // (We can't inspect timers directly; verify via the action stream.)
    let (_, establish_actions) = (0, &ack);
    let _ = establish_actions;
    let acts = deliver(&mut b, &ack, SEC);
    let _ = acts;
    // Firing the timer on an idle established connection emits a probe.
    let probe = a.on_timer(TcpTimer::Keepalive, 11 * SEC);
    let segs = sends(&probe);
    assert_eq!(segs.len(), 1, "one keepalive probe expected: {probe:?}");
    assert!(segs[0].0.flags.ack && segs[0].1.is_empty());
    assert_eq!(a.stats().probes, 1);
}

#[test]
fn live_peer_answers_probe_and_connection_survives() {
    let (mut a, mut b) = established();
    for round in 1..=6u64 {
        let probe = a.on_timer(TcpTimer::Keepalive, round * 11 * SEC);
        assert!(!sends(&probe).is_empty(), "probe {round} must go out");
        // The peer answers (the probe's seq is below rcv_nxt → re-ACK),
        // which resets the failure count.
        let reply = deliver(&mut b, &probe, round * 11 * SEC + 1);
        assert!(!sends(&reply).is_empty(), "peer must answer the probe");
        deliver(&mut a, &reply, round * 11 * SEC + 2);
        assert_eq!(a.state(), State::Established);
    }
}

#[test]
fn dead_peer_causes_reset_after_probe_budget() {
    let (mut a, b) = established();
    drop(b); // the peer machine is gone; probes vanish
    let mut now = 11 * SEC;
    let mut reset = false;
    for _ in 0..10 {
        let actions = a.on_timer(TcpTimer::Keepalive, now);
        if actions.iter().any(|x| matches!(x, TcpAction::Reset)) {
            reset = true;
            break;
        }
        now += 11 * SEC;
    }
    assert!(reset, "unanswered probes must reset the connection");
    assert_eq!(a.state(), State::Closed);
}

#[test]
fn disabled_keepalive_never_probes() {
    let cfg = TcpConfig::default(); // keepalive: None
    let (mut a, syn) = Tcb::connect((A, 100), (B, 200), cfg.clone(), 1000, 0);
    let listener = unp_tcp::ListenTcb::new((B, 200), cfg);
    let (syn_repr, _) = sends(&syn)[0].clone();
    let (mut b, synack) = listener.on_syn((A, 100), &syn_repr, 9000, 0).unwrap();
    let ack = deliver(&mut a, &synack, SEC);
    deliver(&mut b, &ack, SEC);
    // A stray keepalive fire (should never be armed) is a no-op.
    let actions = a.on_timer(TcpTimer::Keepalive, 100 * SEC);
    assert!(actions.is_empty());
    assert_eq!(a.state(), State::Established);
}
