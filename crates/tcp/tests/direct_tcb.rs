//! Direct TCB tests: hand-driven segment exchanges for behaviours the
//! loopback harness doesn't isolate — simultaneous open, zero-window
//! persist probing, window-update gating, and congestion-window dynamics.

use unp_tcp::{CongestionControl, State, Tcb, TcpAction, TcpConfig, TcpTimer};
use unp_wire::{Ipv4Addr, SeqNum, TcpRepr};

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const MS: u64 = 1_000_000;

fn sends(actions: &[TcpAction]) -> Vec<(TcpRepr, Vec<u8>)> {
    actions
        .iter()
        .filter_map(|a| match a {
            TcpAction::Send(r, p) => Some((*r, p.clone())),
            _ => None,
        })
        .collect()
}

/// Feeds every Send from `actions` into `dst`, returning its responses.
fn deliver(dst: &mut Tcb, actions: &[TcpAction], now: u64) -> Vec<TcpAction> {
    let mut out = Vec::new();
    for (repr, payload) in sends(actions) {
        out.extend(dst.on_segment(&repr, &payload, now));
    }
    out
}

#[test]
fn simultaneous_open_establishes_both_sides() {
    // Both endpoints actively connect to each other at once (RFC 793 §3.4
    // figure 8). The SYNs cross; both go SYN_SENT → SYN_RECEIVED →
    // ESTABLISHED.
    let (mut a, syn_a) = Tcb::connect((A, 100), (B, 200), TcpConfig::default(), 1000, 0);
    let (mut b, syn_b) = Tcb::connect((B, 200), (A, 100), TcpConfig::default(), 9000, 0);
    assert_eq!(a.state(), State::SynSent);
    assert_eq!(b.state(), State::SynSent);

    // Cross-deliver the SYNs: each side answers SYN|ACK.
    let synack_from_a = deliver(&mut a, &syn_b, MS);
    let synack_from_b = deliver(&mut b, &syn_a, MS);
    assert_eq!(a.state(), State::SynReceived);
    assert_eq!(b.state(), State::SynReceived);
    assert!(sends(&synack_from_a)[0].0.flags.syn && sends(&synack_from_a)[0].0.flags.ack);

    // Cross-deliver the SYN|ACKs. Their sequence numbers predate the
    // already-consumed SYNs, so per RFC 793 each side answers with a
    // plain re-ACK (still SYN_RECEIVED)...
    let reack_a = deliver(&mut a, &synack_from_b, 2 * MS);
    let reack_b = deliver(&mut b, &synack_from_a, 2 * MS);
    assert_eq!(a.state(), State::SynReceived);
    assert!(
        !sends(&reack_a).is_empty(),
        "must re-ACK the crossed SYN|ACK"
    );

    // ...and those ACKs complete the handshake on both sides.
    let done_a = deliver(&mut a, &reack_b, 3 * MS);
    let done_b = deliver(&mut b, &reack_a, 3 * MS);
    assert_eq!(a.state(), State::Established);
    assert_eq!(b.state(), State::Established);
    assert!(done_a.iter().any(|x| matches!(x, TcpAction::Connected)));
    assert!(done_b.iter().any(|x| matches!(x, TcpAction::Connected)));
}

/// Builds an established pair by running the three-way handshake.
fn established() -> (Tcb, Tcb) {
    established_with(TcpConfig::default())
}

/// Same, with a custom configuration on both ends.
fn established_with(cfg: TcpConfig) -> (Tcb, Tcb) {
    let (mut a, syn) = Tcb::connect((A, 100), (B, 200), cfg.clone(), 1000, 0);
    let listener = unp_tcp::ListenTcb::new((B, 200), cfg);
    let (syn_repr, _) = sends(&syn)[0].clone();
    let (mut b, synack) = listener.on_syn((A, 100), &syn_repr, 9000, 0).unwrap();
    let ack = deliver(&mut a, &synack, MS);
    deliver(&mut b, &ack, MS);
    assert_eq!(a.state(), State::Established);
    assert_eq!(b.state(), State::Established);
    (a, b)
}

#[test]
fn zero_window_triggers_persist_probe_and_recovers() {
    // Immediate ACKs so the probe's acknowledgment isn't delayed.
    let (mut a, mut b) = established_with(TcpConfig::low_latency());
    // B slams its window shut (simulate by delivering a window update of 0).
    let (hdr, _) = sends(&b.on_timer(TcpTimer::DelayedAck, 2 * MS))
        .first()
        .cloned()
        .unwrap_or((
            TcpRepr {
                src_port: 200,
                dst_port: 100,
                seq: SeqNum(9001),
                ack_num: SeqNum(1001),
                flags: unp_wire::TcpFlags::ack(),
                window: 0,
                mss: None,
            },
            Vec::new(),
        ));
    let zero_win = TcpRepr { window: 0, ..hdr };
    a.on_segment(&zero_win, &[], 3 * MS);

    // A queues data; nothing can be sent, so the persist timer arms.
    let (n, actions) = a.send(b"stuck", 3 * MS).unwrap();
    assert_eq!(n, 5);
    assert!(
        actions
            .iter()
            .any(|x| matches!(x, TcpAction::SetTimer(TcpTimer::Persist, _))),
        "persist must arm on a closed window: {actions:?}"
    );
    assert!(sends(&actions).is_empty(), "no data into a zero window");

    // Persist fires: exactly one probe byte goes out.
    let probe_actions = a.on_timer(TcpTimer::Persist, 10 * MS);
    let probes = sends(&probe_actions);
    assert_eq!(probes.len(), 1);
    assert_eq!(probes[0].1, b"stuck"[..1].to_vec());
    assert_eq!(a.stats().probes, 1);

    // B accepts the probe (its real window reopened) and acks; A drains.
    let resp = deliver(&mut b, &probe_actions, 11 * MS);
    let drained = deliver(&mut a, &resp, 12 * MS);
    let rest: Vec<u8> = sends(&drained)
        .iter()
        .flat_map(|(_, p)| p.clone())
        .collect();
    assert_eq!(rest, b"tuck", "remaining bytes flow once the window opens");
}

#[test]
fn window_update_gating_ignores_stale_segments() {
    let (mut a, b) = established();
    drop(b);
    // A current ACK advertising a large window.
    let fresh = TcpRepr {
        src_port: 200,
        dst_port: 100,
        seq: SeqNum(9001),
        ack_num: SeqNum(1001),
        flags: unp_wire::TcpFlags::ack(),
        window: 8192,
        mss: None,
    };
    a.on_segment(&fresh, &[], 5 * MS);
    // A stale duplicate (older seq) advertising a tiny window must NOT
    // shrink the send window (RFC 793 wl1/wl2 gating). If it did, the next
    // send would stall below; instead data flows.
    let stale = TcpRepr {
        seq: SeqNum(9000),
        window: 1,
        ..fresh
    };
    a.on_segment(&stale, &[], 6 * MS);
    let (n, actions) = a.send(&vec![7u8; 4000], 7 * MS).unwrap();
    assert_eq!(n, 4000);
    // Two full MSS segments go out immediately (the 1080-byte tail is
    // Nagle-held); a 1-byte stale window would have allowed almost
    // nothing.
    let sent: usize = sends(&actions).iter().map(|(_, p)| p.len()).sum();
    assert!(sent >= 2920, "stale window clamped transmission: {sent}");
}

#[test]
fn slow_start_grows_cwnd_per_ack() {
    let mut cfg = TcpConfig::low_latency(); // immediate ACKs clock the window
    cfg.congestion = CongestionControl::Tahoe;
    let (mut a, syn) = Tcb::connect((A, 100), (B, 200), cfg.clone(), 1000, 0);
    let listener = unp_tcp::ListenTcb::new((B, 200), cfg);
    let (syn_repr, _) = sends(&syn)[0].clone();
    let (mut b, synack) = listener.on_syn((A, 100), &syn_repr, 9000, 0).unwrap();
    let ack = deliver(&mut a, &synack, MS);
    deliver(&mut b, &ack, MS);

    // With cwnd = 1 MSS, a large write emits exactly one segment.
    let (_, actions) = a.send(&vec![1u8; 8 * 1460], 2 * MS).unwrap();
    assert_eq!(sends(&actions).len(), 1, "slow start begins at one MSS");
    // Each ACK doubles the allowance (1 → 2 → 4 ...).
    let resp = deliver(&mut b, &actions, 3 * MS);
    let burst2 = deliver(&mut a, &resp, 4 * MS);
    assert_eq!(sends(&burst2).len(), 2, "second flight: two segments");
    let resp2 = deliver(&mut b, &burst2, 5 * MS);
    let burst3 = deliver(&mut a, &resp2, 6 * MS);
    assert!(
        sends(&burst3).len() >= 3,
        "third flight grows again: {}",
        sends(&burst3).len()
    );
}

#[test]
fn fin_retransmitted_after_loss() {
    let (mut a, mut b) = established();
    let close_actions = a.close(2 * MS).unwrap();
    let fins = sends(&close_actions);
    assert_eq!(fins.len(), 1);
    assert!(fins[0].0.flags.fin);
    assert_eq!(a.state(), State::FinWait1);

    // The FIN is lost; the retransmission timer re-sends it.
    let rexmit = a.on_timer(TcpTimer::Retransmit, 1000 * MS);
    let again = sends(&rexmit);
    assert_eq!(again.len(), 1);
    assert!(again[0].0.flags.fin, "FIN must be retransmitted");
    assert_eq!(again[0].0.seq, fins[0].0.seq, "same sequence number");

    // Deliver it; B acks and moves to CLOSE_WAIT; A reaches FIN_WAIT_2.
    let resp = deliver(&mut b, &rexmit, 1001 * MS);
    assert_eq!(b.state(), State::CloseWait);
    deliver(&mut a, &resp, 1002 * MS);
    assert_eq!(a.state(), State::FinWait2);
}

#[test]
fn time_wait_reacks_retransmitted_fin_and_restarts_2msl() {
    let (mut a, mut b) = established();
    // A closes; B acks and closes too; A lands in TIME_WAIT.
    let a_fin = a.close(2 * MS).unwrap();
    let b_resp = deliver(&mut b, &a_fin, 3 * MS);
    deliver(&mut a, &b_resp, 4 * MS);
    let b_fin = b.close(5 * MS).unwrap();
    let a_resp = deliver(&mut a, &b_fin, 6 * MS);
    assert_eq!(a.state(), State::TimeWait);
    deliver(&mut b, &a_resp, 7 * MS);
    assert_eq!(b.state(), State::Closed);

    // B's FIN is retransmitted (its ACK was lost in some other universe):
    // A must re-ACK and restart the quarantine, staying in TIME_WAIT.
    let (fin_repr, fin_payload) = sends(&b_fin)[0].clone();
    let reack = a.on_segment(&fin_repr, &fin_payload, 8 * MS);
    assert!(
        !sends(&reack).is_empty(),
        "retransmitted FIN must be re-ACKed: {reack:?}"
    );
    assert!(reack
        .iter()
        .any(|x| matches!(x, TcpAction::SetTimer(TcpTimer::TimeWait, _))));
    assert_eq!(a.state(), State::TimeWait);

    // 2MSL later the block closes.
    let done = a.on_timer(TcpTimer::TimeWait, 120_000 * MS);
    assert!(done.iter().any(|x| matches!(x, TcpAction::ConnClosed)));
    assert_eq!(a.state(), State::Closed);
}

#[test]
fn data_received_in_close_wait_still_delivered() {
    let (mut a, mut b) = established();
    // A sends data + FIN together.
    let (_, data_actions) = a.send(b"last words", 2 * MS).unwrap();
    let fin_actions = a.close(2 * MS).unwrap();
    let mut all = data_actions;
    all.extend(fin_actions);
    let resp = deliver(&mut b, &all, 3 * MS);
    assert_eq!(b.state(), State::CloseWait);
    let (data, _) = b.recv(usize::MAX, 4 * MS);
    assert_eq!(data, b"last words");
    assert!(b.at_eof());
    // B can still send in CLOSE_WAIT (half-close semantics).
    let (n, back) = b.send(b"good bye", 5 * MS).unwrap();
    assert_eq!(n, 8);
    assert!(!sends(&back).is_empty());
    let _ = deliver(&mut a, &resp, 6 * MS);
}
