//! The transmission control block and TCP state machine.
//!
//! One [`Tcb`] is one connection. It is a pure state machine: all methods
//! take `now` and return [`TcpAction`]s for the hosting organization to
//! route (segments to transmit via IP, timers to arm on the timing wheel,
//! notifications to deliver to the application). The same `Tcb` code runs
//! in every simulated protocol organization, and the registry server uses
//! it to execute the three-way handshake before transferring the block to
//! the application's library (paper §3.4).

use std::collections::VecDeque;

use unp_wire::{Ipv4Addr, SeqNum, TcpFlags, TcpRepr};

use crate::config::{CongestionControl, TcpConfig};
use crate::reasm::OooBuffer;
use crate::rtt::RttEstimator;
use crate::{Nanos, TcpError};

/// RFC 793 connection states (`CLOSED` and `LISTEN` are represented by the
/// absence of a `Tcb` and by [`ListenTcb`] respectively; `Closed` remains
/// as the terminal state a live block can reach).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// SYN sent, awaiting SYN|ACK.
    SynSent,
    /// SYN received, SYN|ACK sent, awaiting ACK.
    SynReceived,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, awaiting its ACK.
    FinWait1,
    /// Our FIN acked; awaiting the peer's FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Both FINs crossed; awaiting final ACK.
    Closing,
    /// We closed after the peer; FIN sent, awaiting its ACK.
    LastAck,
    /// Quarantine for 2·MSL before the pair may be reused.
    TimeWait,
    /// Terminal.
    Closed,
}

impl State {
    /// True once the three-way handshake has completed.
    pub fn is_synchronized(self) -> bool {
        !matches!(self, State::SynSent | State::SynReceived | State::Closed)
    }
}

/// The journal's mirror of [`State`] (`unp-trace` sits below this crate).
fn fsm_of(s: State) -> unp_trace::TcpFsm {
    match s {
        State::SynSent => unp_trace::TcpFsm::SynSent,
        State::SynReceived => unp_trace::TcpFsm::SynReceived,
        State::Established => unp_trace::TcpFsm::Established,
        State::FinWait1 => unp_trace::TcpFsm::FinWait1,
        State::FinWait2 => unp_trace::TcpFsm::FinWait2,
        State::CloseWait => unp_trace::TcpFsm::CloseWait,
        State::Closing => unp_trace::TcpFsm::Closing,
        State::LastAck => unp_trace::TcpFsm::LastAck,
        State::TimeWait => unp_trace::TcpFsm::TimeWait,
        State::Closed => unp_trace::TcpFsm::Closed,
    }
}

/// The timers a connection uses. Each kind has at most one pending
/// instance; re-arming replaces the previous deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpTimer {
    /// Retransmission timeout.
    Retransmit,
    /// Zero-window probe (persist) timer.
    Persist,
    /// Delayed-ACK flush.
    DelayedAck,
    /// 2·MSL quarantine.
    TimeWait,
    /// Idle-connection keepalive probe.
    Keepalive,
}

const TIMER_KINDS: usize = 5;

impl TcpTimer {
    fn idx(self) -> usize {
        match self {
            TcpTimer::Retransmit => 0,
            TcpTimer::Persist => 1,
            TcpTimer::DelayedAck => 2,
            TcpTimer::TimeWait => 3,
            TcpTimer::Keepalive => 4,
        }
    }
}

/// Outputs of the state machine, routed and cost-charged by the host
/// organization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpAction {
    /// Transmit a segment (header representation + payload); the host
    /// wraps it in IP using the connection's address pair.
    Send(TcpRepr, Vec<u8>),
    /// Arm (or re-arm) a timer for an absolute deadline.
    SetTimer(TcpTimer, Nanos),
    /// Disarm a timer.
    CancelTimer(TcpTimer),
    /// The handshake completed; the connection is established.
    Connected,
    /// New in-order data is available to read.
    DataAvailable,
    /// Send-buffer space was freed; a blocked writer may continue.
    SendSpace,
    /// The peer closed its direction (EOF after buffered data drains).
    PeerClosed,
    /// The connection was reset (by the peer, or after too many
    /// retransmissions).
    Reset,
    /// The block reached `Closed` and can be reaped.
    ConnClosed,
}

/// Running counters for one connection.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpStats {
    /// Segments transmitted (including retransmissions).
    pub segs_out: u64,
    /// Segments received and processed.
    pub segs_in: u64,
    /// Data bytes retransmitted.
    pub bytes_rexmit: u64,
    /// Data segments retransmitted (both RTO fires and fast
    /// retransmits emit through the same head-of-buffer path).
    pub rexmits: u64,
    /// RTT estimator samples taken.
    pub rtt_samples: u64,
    /// Retransmission timeouts fired.
    pub rto_fires: u64,
    /// Fast retransmits triggered.
    pub fast_rexmit: u64,
    /// Duplicate ACKs received.
    pub dup_acks_in: u64,
    /// Zero-window probes sent.
    pub probes: u64,
}

/// A listening endpoint: produces a new [`Tcb`] per SYN.
#[derive(Debug, Clone)]
pub struct ListenTcb {
    local: (Ipv4Addr, u16),
    cfg: TcpConfig,
}

impl ListenTcb {
    /// Creates a listener on `local`.
    pub fn new(local: (Ipv4Addr, u16), cfg: TcpConfig) -> ListenTcb {
        ListenTcb { local, cfg }
    }

    /// The listening address.
    pub fn local(&self) -> (Ipv4Addr, u16) {
        self.local
    }

    /// Handles an incoming SYN addressed to this listener, creating a
    /// half-open connection in `SynReceived` with its SYN|ACK queued.
    /// `iss` is the initial send sequence number to use. Non-SYN segments
    /// return `None` (the caller answers unknown traffic with RST).
    pub fn on_syn(
        &self,
        remote: (Ipv4Addr, u16),
        repr: &TcpRepr,
        iss: u32,
        now: Nanos,
    ) -> Option<(Tcb, Vec<TcpAction>)> {
        if !repr.flags.syn || repr.flags.ack || repr.flags.rst {
            return None;
        }
        let mut tcb = Tcb::new(self.local, remote, self.cfg.clone(), SeqNum(iss));
        tcb.transition(State::SynReceived);
        tcb.irs = repr.seq;
        tcb.rcv_nxt = repr.seq + 1;
        tcb.snd_nxt = tcb.iss + 1;
        tcb.apply_peer_mss(repr.mss);
        tcb.update_send_window(repr);
        let mut out = Vec::new();
        tcb.emit_segment(
            TcpFlags::syn_ack(),
            tcb.iss,
            &[],
            Some(tcb.cfg.mss_local as u16),
            &mut out,
        );
        tcb.arm_timer(TcpTimer::Retransmit, now + tcb.rtt.rto(), &mut out);
        Some((tcb, out))
    }
}

/// The transmission control block. See module docs.
#[derive(Debug)]
pub struct Tcb {
    cfg: TcpConfig,
    state: State,
    local: (Ipv4Addr, u16),
    remote: (Ipv4Addr, u16),

    // --- send sequence space ---
    iss: SeqNum,
    snd_una: SeqNum,
    snd_nxt: SeqNum,
    snd_wnd: u32,
    snd_wl1: SeqNum,
    snd_wl2: SeqNum,
    snd_mss: usize,
    /// Stream bytes from `snd_una` onward (unacked then unsent).
    send_buf: VecDeque<u8>,
    /// Set once `close` queues a FIN; cleared never.
    fin_queued: bool,
    /// Sequence number of our FIN once transmitted.
    snd_fin: Option<SeqNum>,

    // --- receive sequence space ---
    irs: SeqNum,
    rcv_nxt: SeqNum,
    recv_buf: VecDeque<u8>,
    ooo: OooBuffer,
    /// Sequence number of the peer's FIN, once seen.
    peer_fin: Option<SeqNum>,
    /// Edge (rcv_nxt + window) advertised in our last ACK; for receiver-
    /// side silly-window avoidance on reads.
    adv_edge: SeqNum,

    // --- ACK policy ---
    ack_pending: u32,

    // --- retransmission ---
    rtt: RttEstimator,
    rtt_probe: Option<(SeqNum, Nanos)>,
    retransmit_count: u32,
    persist_backoff: u32,
    /// Consecutive unanswered keepalive probes.
    keepalive_fails: u32,

    // --- congestion (optional) ---
    cwnd: usize,
    ssthresh: usize,
    dup_acks: u32,

    // --- timers (deadline bookkeeping so re-arms replace) ---
    timer_set: [Option<Nanos>; TIMER_KINDS],

    stats: TcpStats,
    /// Counter values as of the last [`take_stats_delta`](Tcb::take_stats_delta)
    /// harvest, so live samplers can read increments without resetting
    /// the cumulative [`stats`](Tcb::stats).
    harvested: TcpStats,
}

impl Tcb {
    fn new(local: (Ipv4Addr, u16), remote: (Ipv4Addr, u16), cfg: TcpConfig, iss: SeqNum) -> Tcb {
        let rtt = RttEstimator::new(cfg.rto_initial, cfg.rto_min, cfg.rto_max);
        let mss_default = cfg.mss_default;
        let recv_buf_cap = cfg.recv_buf;
        let (cwnd, ssthresh) = if cfg.congestion == CongestionControl::Off {
            (usize::MAX, usize::MAX)
        } else {
            (cfg.mss_local, 64 * 1024) // slow start from one segment
        };
        Tcb {
            cfg,
            state: State::Closed,
            local,
            remote,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_wnd: 0,
            snd_wl1: SeqNum(0),
            snd_wl2: SeqNum(0),
            snd_mss: mss_default,
            send_buf: VecDeque::new(),
            fin_queued: false,
            snd_fin: None,
            irs: SeqNum(0),
            rcv_nxt: SeqNum(0),
            recv_buf: VecDeque::with_capacity(recv_buf_cap),
            ooo: OooBuffer::new(),
            peer_fin: None,
            adv_edge: SeqNum(0),
            ack_pending: 0,
            rtt,
            rtt_probe: None,
            retransmit_count: 0,
            persist_backoff: 0,
            keepalive_fails: 0,
            cwnd,
            ssthresh,
            dup_acks: 0,
            timer_set: [None; TIMER_KINDS],
            stats: TcpStats::default(),
            harvested: TcpStats::default(),
        }
    }

    /// Commits a protocol-state move, journaling the edge so the online
    /// conformance monitor can check it against the legal transition
    /// relation. Re-entering the current state is a no-op (teardown paths
    /// reach `enter_closed` more than once); constructor initialization
    /// is not an edge.
    fn transition(&mut self, to: State) {
        let from = self.state;
        if from == to {
            return;
        }
        self.state = to;
        unp_trace::emit(None, || unp_trace::Event::TcpState {
            local_port: self.local.1,
            remote_port: self.remote.1,
            remote_ip: self.remote.0 .0,
            from: fsm_of(from),
            to: fsm_of(to),
        });
    }

    /// Opens a connection actively: returns the block in `SynSent` with the
    /// SYN emitted.
    pub fn connect(
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        cfg: TcpConfig,
        iss: u32,
        now: Nanos,
    ) -> (Tcb, Vec<TcpAction>) {
        let mut tcb = Tcb::new(local, remote, cfg, SeqNum(iss));
        tcb.transition(State::SynSent);
        tcb.snd_nxt = tcb.iss + 1;
        let mut out = Vec::new();
        let mss = Some(tcb.cfg.mss_local as u16);
        tcb.emit_segment(TcpFlags::SYN, tcb.iss, &[], mss, &mut out);
        tcb.arm_timer(TcpTimer::Retransmit, now + tcb.rtt.rto(), &mut out);
        (tcb, out)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Current state.
    pub fn state(&self) -> State {
        self.state
    }

    /// Local (address, port).
    pub fn local(&self) -> (Ipv4Addr, u16) {
        self.local
    }

    /// Remote (address, port).
    pub fn remote(&self) -> (Ipv4Addr, u16) {
        self.remote
    }

    /// Bytes available to read.
    pub fn recv_available(&self) -> usize {
        self.recv_buf.len()
    }

    /// Free space in the send buffer.
    pub fn send_space(&self) -> usize {
        self.cfg.send_buf - self.send_buf.len()
    }

    /// True once the peer's FIN has been received *and* all data before it
    /// has been read: the stream is at EOF.
    pub fn at_eof(&self) -> bool {
        self.peer_fin.is_some() && self.recv_buf.is_empty() && self.ooo.is_empty()
    }

    /// The negotiated maximum segment size.
    pub fn mss(&self) -> usize {
        self.snd_mss
    }

    /// Connection statistics.
    pub fn stats(&self) -> TcpStats {
        self.stats
    }

    /// Counter increments since the previous harvest (or since creation,
    /// the first time). Leaves the cumulative [`stats`](Tcb::stats)
    /// untouched; the world calls this after every segment batch to feed
    /// retransmit/RTT activity into the live metrics registry.
    pub fn take_stats_delta(&mut self) -> TcpStats {
        let cur = self.stats;
        let prev = std::mem::replace(&mut self.harvested, cur);
        TcpStats {
            segs_out: cur.segs_out - prev.segs_out,
            segs_in: cur.segs_in - prev.segs_in,
            bytes_rexmit: cur.bytes_rexmit - prev.bytes_rexmit,
            rexmits: cur.rexmits - prev.rexmits,
            rtt_samples: cur.rtt_samples - prev.rtt_samples,
            rto_fires: cur.rto_fires - prev.rto_fires,
            fast_rexmit: cur.fast_rexmit - prev.fast_rexmit,
            dup_acks_in: cur.dup_acks_in - prev.dup_acks_in,
            probes: cur.probes - prev.probes,
        }
    }

    /// The smoothed RTT estimate, if any samples have been taken.
    pub fn srtt(&self) -> Option<Nanos> {
        self.rtt.srtt()
    }

    fn recv_window(&self) -> u32 {
        let free = self.cfg.recv_buf.saturating_sub(self.recv_buf.len());
        free.min(u16::MAX as usize) as u32
    }

    fn effective_send_window(&self) -> usize {
        (self.snd_wnd as usize).min(self.cwnd)
    }

    fn apply_peer_mss(&mut self, opt: Option<u16>) {
        let peer = opt.map_or(self.cfg.mss_default, |m| m as usize);
        self.snd_mss = peer.min(self.cfg.mss_local);
    }

    // ------------------------------------------------------------------
    // Segment construction
    // ------------------------------------------------------------------

    fn emit_segment(
        &mut self,
        flags: TcpFlags,
        seq: SeqNum,
        payload: &[u8],
        mss: Option<u16>,
        out: &mut Vec<TcpAction>,
    ) {
        let window = self.recv_window() as u16;
        self.adv_edge = self.rcv_nxt + u32::from(window);
        let repr = TcpRepr {
            src_port: self.local.1,
            dst_port: self.remote.1,
            seq,
            ack_num: if flags.ack { self.rcv_nxt } else { SeqNum(0) },
            flags,
            window,
            mss,
        };
        self.stats.segs_out += 1;
        out.push(TcpAction::Send(repr, payload.to_vec()));
    }

    fn emit_ack(&mut self, out: &mut Vec<TcpAction>) {
        self.ack_pending = 0;
        self.cancel_timer(TcpTimer::DelayedAck, out);
        let seq = self.snd_nxt;
        self.emit_segment(TcpFlags::ack(), seq, &[], None, out);
    }

    /// Builds an RST in response to a segment that arrived for a dead or
    /// mismatched connection (static: no block state needed).
    pub fn rst_for(local: (Ipv4Addr, u16), offending: &TcpRepr, payload_len: usize) -> TcpRepr {
        // RFC 793: if the offender has an ACK, seq = its ack; else seq 0 and
        // ack = seq + len (+1 for SYN).
        if offending.flags.ack {
            TcpRepr {
                src_port: local.1,
                dst_port: offending.src_port,
                seq: offending.ack_num,
                ack_num: SeqNum(0),
                flags: TcpFlags {
                    rst: true,
                    ..TcpFlags::default()
                },
                window: 0,
                mss: None,
            }
        } else {
            let advance = payload_len as u32
                + u32::from(offending.flags.syn)
                + u32::from(offending.flags.fin);
            TcpRepr {
                src_port: local.1,
                dst_port: offending.src_port,
                seq: SeqNum(0),
                ack_num: offending.seq + advance,
                flags: TcpFlags {
                    rst: true,
                    ack: true,
                    ..TcpFlags::default()
                },
                window: 0,
                mss: None,
            }
        }
    }

    // ------------------------------------------------------------------
    // Timer bookkeeping
    // ------------------------------------------------------------------

    fn arm_timer(&mut self, t: TcpTimer, deadline: Nanos, out: &mut Vec<TcpAction>) {
        if self.timer_set[t.idx()].is_some() {
            out.push(TcpAction::CancelTimer(t));
        }
        self.timer_set[t.idx()] = Some(deadline);
        out.push(TcpAction::SetTimer(t, deadline));
    }

    fn cancel_timer(&mut self, t: TcpTimer, out: &mut Vec<TcpAction>) {
        if self.timer_set[t.idx()].take().is_some() {
            out.push(TcpAction::CancelTimer(t));
        }
    }

    fn timer_armed(&self, t: TcpTimer) -> bool {
        self.timer_set[t.idx()].is_some()
    }

    // ------------------------------------------------------------------
    // User calls
    // ------------------------------------------------------------------

    /// Queues application data for transmission. Returns the number of
    /// bytes accepted (may be less than `data.len()` when the send buffer
    /// fills; the caller waits for [`TcpAction::SendSpace`]).
    pub fn send(&mut self, data: &[u8], now: Nanos) -> Result<(usize, Vec<TcpAction>), TcpError> {
        match self.state {
            State::Established | State::CloseWait | State::SynSent | State::SynReceived => {}
            State::Closed => return Err(TcpError::InvalidState),
            _ => return Err(TcpError::Closing),
        }
        if self.fin_queued {
            return Err(TcpError::Closing);
        }
        let space = self.send_space();
        let take = space.min(data.len());
        self.send_buf.extend(&data[..take]);
        let mut out = Vec::new();
        self.output(now, &mut out);
        Ok((take, out))
    }

    /// Reads up to `max` bytes of in-order data. May emit a window-update
    /// ACK when the read opens the advertised window significantly
    /// (receiver-side silly-window avoidance).
    pub fn recv(&mut self, max: usize, _now: Nanos) -> (Vec<u8>, Vec<TcpAction>) {
        let take = max.min(self.recv_buf.len());
        let data: Vec<u8> = self.recv_buf.drain(..take).collect();
        let mut out = Vec::new();
        if !data.is_empty() && self.state.is_synchronized() && self.state != State::TimeWait {
            let new_edge = self.rcv_nxt + self.recv_window();
            let opened = new_edge.dist(self.adv_edge);
            let threshold = self.snd_mss.min(self.cfg.recv_buf / 2) as i32;
            if opened >= threshold {
                self.emit_ack(&mut out);
            }
        }
        (data, out)
    }

    /// Closes the send direction (queues a FIN after any buffered data).
    pub fn close(&mut self, now: Nanos) -> Result<Vec<TcpAction>, TcpError> {
        let mut out = Vec::new();
        match self.state {
            State::SynSent => {
                self.enter_closed(&mut out);
                Ok(out)
            }
            State::SynReceived | State::Established => {
                self.fin_queued = true;
                self.transition(State::FinWait1);
                self.output(now, &mut out);
                Ok(out)
            }
            State::CloseWait => {
                self.fin_queued = true;
                self.transition(State::LastAck);
                self.output(now, &mut out);
                Ok(out)
            }
            State::FinWait1
            | State::FinWait2
            | State::Closing
            | State::LastAck
            | State::TimeWait => Err(TcpError::Closing),
            State::Closed => Err(TcpError::InvalidState),
        }
    }

    /// Aborts the connection: sends RST (in synchronized states) and closes
    /// immediately. Used by the registry when an application terminates
    /// abnormally ("the protocol server issues a reset message to the
    /// remote peer").
    pub fn abort(&mut self) -> Vec<TcpAction> {
        let mut out = Vec::new();
        if self.state.is_synchronized() && self.state != State::TimeWait {
            let seq = self.snd_nxt;
            self.emit_segment(
                TcpFlags {
                    rst: true,
                    ack: true,
                    ..TcpFlags::default()
                },
                seq,
                &[],
                None,
                &mut out,
            );
        }
        self.enter_closed(&mut out);
        out
    }

    fn enter_closed(&mut self, out: &mut Vec<TcpAction>) {
        for t in [
            TcpTimer::Retransmit,
            TcpTimer::Persist,
            TcpTimer::DelayedAck,
            TcpTimer::TimeWait,
        ] {
            self.cancel_timer(t, out);
        }
        self.transition(State::Closed);
        out.push(TcpAction::ConnClosed);
    }

    // ------------------------------------------------------------------
    // Output engine
    // ------------------------------------------------------------------

    /// Transmits whatever the windows and Nagle permit, then the FIN if
    /// queued and fully drained, then manages the retransmit/persist
    /// timers.
    fn output(&mut self, now: Nanos, out: &mut Vec<TcpAction>) {
        if !matches!(
            self.state,
            State::Established
                | State::CloseWait
                | State::FinWait1
                | State::LastAck
                | State::Closing
        ) {
            return;
        }
        // Data sending only before the FIN goes out.
        if self.snd_fin.is_none() {
            loop {
                let in_flight = self.snd_nxt.dist(self.snd_una).max(0) as usize;
                let unsent = self.send_buf.len().saturating_sub(in_flight);
                if unsent == 0 {
                    break;
                }
                let wnd = self.effective_send_window();
                let usable = wnd.saturating_sub(in_flight);
                let mut len = unsent.min(usable).min(self.snd_mss);
                if len == 0 {
                    // Window closed: the persist timer takes over.
                    if self.snd_wnd == 0
                        && !self.timer_armed(TcpTimer::Persist)
                        && !self.timer_armed(TcpTimer::Retransmit)
                    {
                        self.persist_backoff = 0;
                        let delay = self.rtt.rto();
                        self.arm_timer(TcpTimer::Persist, now + delay, out);
                    }
                    break;
                }
                // Nagle: while data is in flight, don't send sub-MSS
                // segments unless this flushes the last of the buffer and a
                // FIN will follow.
                if self.cfg.nagle && len < self.snd_mss && in_flight > 0 && !self.fin_queued {
                    break;
                }
                // Sender silly-window: without Nagle, still avoid dribbling
                // tiny segments when more is queued than the window lets us
                // send.
                if len < self.snd_mss && len < unsent {
                    // Window-limited partial segment: send only if nothing
                    // is in flight (keeps progress without SWS).
                    if in_flight > 0 {
                        break;
                    }
                    len = len.min(usable);
                }
                let seq = self.snd_nxt;
                let payload: Vec<u8> = self
                    .send_buf
                    .iter()
                    .skip(in_flight)
                    .take(len)
                    .copied()
                    .collect();
                self.snd_nxt += len as u32;
                let push = in_flight + len == self.send_buf.len();
                let flags = TcpFlags {
                    ack: true,
                    psh: push,
                    ..TcpFlags::default()
                };
                // Time one segment per RTT for the estimator (Karn-safe:
                // only fresh transmissions are timed).
                if self.rtt_probe.is_none() {
                    self.rtt_probe = Some((seq + len as u32, now));
                }
                self.ack_pending = 0;
                self.cancel_timer(TcpTimer::DelayedAck, out);
                self.emit_segment(flags, seq, &payload, None, out);
            }
        }
        // FIN transmission once the buffer is drained.
        if self.fin_queued && self.snd_fin.is_none() {
            let in_flight = self.snd_nxt.dist(self.snd_una).max(0) as usize;
            if in_flight == self.send_buf.len() {
                let seq = self.snd_nxt;
                self.snd_fin = Some(seq);
                self.snd_nxt += 1;
                self.emit_segment(
                    TcpFlags {
                        fin: true,
                        ack: true,
                        ..TcpFlags::default()
                    },
                    seq,
                    &[],
                    None,
                    out,
                );
            }
        }
        // Retransmit timer covers any outstanding sequence space.
        if self.snd_nxt != self.snd_una && !self.timer_armed(TcpTimer::Retransmit) {
            let rto = self.rtt.rto();
            self.arm_timer(TcpTimer::Retransmit, now + rto, out);
        }
    }

    /// Rebuilds and resends the segment at `snd_una`. `reason` names the
    /// loss-detection mechanism that fired (RTO expiry or third dup-ACK)
    /// and rides into the journal for root-cause attribution.
    fn retransmit_head(
        &mut self,
        now: Nanos,
        out: &mut Vec<TcpAction>,
        reason: unp_trace::RexmitReason,
    ) {
        match self.state {
            State::SynSent => {
                let mss = Some(self.cfg.mss_local as u16);
                let seq = self.iss;
                self.emit_segment(TcpFlags::SYN, seq, &[], mss, out);
                return;
            }
            State::SynReceived => {
                let mss = Some(self.cfg.mss_local as u16);
                let seq = self.iss;
                self.emit_segment(TcpFlags::syn_ack(), seq, &[], mss, out);
                return;
            }
            _ => {}
        }
        // Karn's rule: never time a retransmitted segment.
        self.rtt_probe = None;
        if !self.send_buf.is_empty() {
            let len = self.send_buf.len().min(self.snd_mss);
            let payload: Vec<u8> = self.send_buf.iter().take(len).copied().collect();
            self.stats.bytes_rexmit += len as u64;
            self.stats.rexmits += 1;
            unp_trace::emit(None, || unp_trace::Event::TcpRexmit {
                local_port: self.local.1,
                remote_port: self.remote.1,
                remote_ip: self.remote.0 .0,
                seq: self.snd_una.0,
                bytes: len as u32,
                reason,
            });
            let seq = self.snd_una;
            // The buffer may hold not-yet-sent bytes (e.g. a window- or
            // cwnd-limited tail); if this retransmission carries them,
            // account for them as sent or later ACKs would appear to cover
            // unsent data and be discarded.
            let end = seq + len as u32;
            if end.gt(self.snd_nxt) {
                self.snd_nxt = end;
            }
            let push = len == self.send_buf.len();
            self.emit_segment(
                TcpFlags {
                    ack: true,
                    psh: push,
                    ..TcpFlags::default()
                },
                seq,
                &payload,
                None,
                out,
            );
        } else if let Some(fin_seq) = self.snd_fin {
            if self.snd_una.le(fin_seq) {
                self.emit_segment(
                    TcpFlags {
                        fin: true,
                        ack: true,
                        ..TcpFlags::default()
                    },
                    fin_seq,
                    &[],
                    None,
                    out,
                );
            }
        }
        let _ = now;
    }

    // ------------------------------------------------------------------
    // Timer expiry
    // ------------------------------------------------------------------

    /// Handles a timer firing. The host calls this when a wheel token for
    /// this connection expires.
    pub fn on_timer(&mut self, t: TcpTimer, now: Nanos) -> Vec<TcpAction> {
        let mut out = Vec::new();
        // The wheel delivered it: it is no longer armed.
        self.timer_set[t.idx()] = None;
        match t {
            TcpTimer::Keepalive => {
                if let Some(interval) = self.cfg.keepalive {
                    if self.state.is_synchronized() && self.state != State::TimeWait {
                        self.keepalive_fails += 1;
                        if self.keepalive_fails > self.cfg.max_keepalive_probes {
                            // The peer is gone: reset the connection.
                            out.push(TcpAction::Reset);
                            out.extend(self.abort());
                            return out;
                        }
                        // A keepalive probe: an ACK with seq = snd_nxt - 1
                        // (provokes a window/ack reply, per 4.3BSD).
                        self.stats.probes += 1;
                        let seq = self.snd_nxt + u32::MAX; // snd_nxt - 1
                        self.emit_segment(
                            TcpFlags {
                                ack: true,
                                ..TcpFlags::default()
                            },
                            seq,
                            &[],
                            None,
                            &mut out,
                        );
                        self.arm_timer(TcpTimer::Keepalive, now + interval, &mut out);
                    }
                }
                return out;
            }
            TcpTimer::Retransmit => {
                if self.snd_nxt == self.snd_una {
                    return out; // nothing outstanding
                }
                self.stats.rto_fires += 1;
                self.retransmit_count += 1;
                if self.retransmit_count > self.cfg.max_retransmits {
                    out.push(TcpAction::Reset);
                    out.extend(self.abort());
                    return out;
                }
                self.rtt.on_retransmit();
                if self.cfg.congestion != CongestionControl::Off {
                    // Timeout: collapse to slow start (both Tahoe and Reno).
                    let flight = self.snd_nxt.dist(self.snd_una).max(0) as usize;
                    self.ssthresh = (flight / 2).max(2 * self.snd_mss);
                    self.cwnd = self.snd_mss;
                }
                self.dup_acks = 0;
                self.retransmit_head(now, &mut out, unp_trace::RexmitReason::Rto);
                let rto = self.rtt.rto();
                self.arm_timer(TcpTimer::Retransmit, now + rto, &mut out);
            }
            TcpTimer::Persist => {
                if self.snd_wnd == 0 && self.state.is_synchronized() {
                    let in_flight = self.snd_nxt.dist(self.snd_una).max(0) as usize;
                    let unsent = self.send_buf.len().saturating_sub(in_flight);
                    if unsent > 0 {
                        // Probe with one byte beyond the window.
                        self.stats.probes += 1;
                        let payload: Vec<u8> = self
                            .send_buf
                            .iter()
                            .skip(in_flight)
                            .take(1)
                            .copied()
                            .collect();
                        let seq = self.snd_nxt;
                        self.snd_nxt += 1;
                        self.emit_segment(
                            TcpFlags {
                                ack: true,
                                ..TcpFlags::default()
                            },
                            seq,
                            &payload,
                            None,
                            &mut out,
                        );
                    }
                    self.persist_backoff = (self.persist_backoff + 1).min(10);
                    let delay = (self.rtt.rto() << self.persist_backoff).min(self.cfg.rto_max);
                    self.arm_timer(TcpTimer::Persist, now + delay, &mut out);
                }
            }
            TcpTimer::DelayedAck => {
                if self.ack_pending > 0 {
                    self.emit_ack(&mut out);
                }
            }
            TcpTimer::TimeWait => {
                self.enter_closed(&mut out);
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Segment input
    // ------------------------------------------------------------------

    /// Processes a received segment addressed to this connection. The
    /// caller has already verified the checksum and demultiplexed.
    pub fn on_segment(&mut self, repr: &TcpRepr, payload: &[u8], now: Nanos) -> Vec<TcpAction> {
        self.stats.segs_in += 1;
        let mut out = Vec::new();
        match self.state {
            State::Closed => {}
            State::SynSent => self.on_segment_syn_sent(repr, payload, now, &mut out),
            _ => self.on_segment_sync(repr, payload, now, &mut out),
        }
        out
    }

    fn on_segment_syn_sent(
        &mut self,
        repr: &TcpRepr,
        payload: &[u8],
        now: Nanos,
        out: &mut Vec<TcpAction>,
    ) {
        // RFC 793 SYN-SENT processing.
        if repr.flags.ack {
            let ack = repr.ack_num;
            if ack.le(self.iss) || ack.gt(self.snd_nxt) {
                if !repr.flags.rst {
                    let rst = Self::rst_for(self.local, repr, payload.len());
                    self.stats.segs_out += 1;
                    out.push(TcpAction::Send(rst, Vec::new()));
                }
                return;
            }
        }
        if repr.flags.rst {
            if repr.flags.ack {
                out.push(TcpAction::Reset);
                self.enter_closed(out);
            }
            return;
        }
        if repr.flags.syn {
            self.irs = repr.seq;
            self.rcv_nxt = repr.seq + 1;
            self.apply_peer_mss(repr.mss);
            if repr.flags.ack {
                self.snd_una = repr.ack_num;
                self.update_send_window(repr);
                self.transition(State::Established);
                self.retransmit_count = 0;
                self.cancel_timer(TcpTimer::Retransmit, out);
                if let Some(interval) = self.cfg.keepalive {
                    self.arm_timer(TcpTimer::Keepalive, now + interval, out);
                }
                out.push(TcpAction::Connected);
                self.emit_ack(out);
                self.output(now, out);
            } else {
                // Simultaneous open.
                self.transition(State::SynReceived);
                self.snd_una = self.iss;
                let mss = Some(self.cfg.mss_local as u16);
                let seq = self.iss;
                self.emit_segment(TcpFlags::syn_ack(), seq, &[], mss, out);
            }
        }
    }

    fn seq_acceptable(&self, repr: &TcpRepr, seg_len: u32) -> bool {
        let wnd = self.recv_window();
        let seq = repr.seq;
        match (seg_len, wnd) {
            (0, 0) => seq == self.rcv_nxt,
            (0, w) => seq.in_window(self.rcv_nxt, w),
            (_, 0) => false,
            (l, w) => seq.in_window(self.rcv_nxt, w) || (seq + (l - 1)).in_window(self.rcv_nxt, w),
        }
    }

    fn update_send_window(&mut self, repr: &TcpRepr) -> bool {
        // RFC 793 window-update gating on (wl1, wl2).
        if repr.flags.syn
            || self.snd_wl1.lt(repr.seq)
            || (self.snd_wl1 == repr.seq && self.snd_wl2.le(repr.ack_num))
        {
            let was_zero = self.snd_wnd == 0;
            self.snd_wnd = u32::from(repr.window);
            self.snd_wl1 = repr.seq;
            self.snd_wl2 = repr.ack_num;
            return was_zero && self.snd_wnd > 0;
        }
        false
    }

    fn on_segment_sync(
        &mut self,
        repr: &TcpRepr,
        payload: &[u8],
        now: Nanos,
        out: &mut Vec<TcpAction>,
    ) {
        // Any traffic from the peer proves liveness: restart the
        // keepalive clock.
        if let Some(interval) = self.cfg.keepalive {
            if self.state.is_synchronized() && self.state != State::TimeWait {
                self.keepalive_fails = 0;
                self.arm_timer(TcpTimer::Keepalive, now + interval, out);
            }
        }
        let seg_len = payload.len() as u32 + u32::from(repr.flags.syn) + u32::from(repr.flags.fin);

        // Step 1: sequence acceptability.
        if !self.seq_acceptable(repr, seg_len) {
            if !repr.flags.rst {
                // Includes the TIME_WAIT re-ACK of a retransmitted FIN.
                if self.state == State::TimeWait {
                    self.arm_timer(TcpTimer::TimeWait, now + self.cfg.time_wait, out);
                }
                self.emit_ack(out);
            }
            return;
        }
        // Step 2: RST.
        if repr.flags.rst {
            out.push(TcpAction::Reset);
            self.enter_closed(out);
            return;
        }
        // Step 3: SYN in the window is an error in synchronized states.
        if repr.flags.syn && repr.seq.ge(self.rcv_nxt) {
            let rst = Self::rst_for(self.local, repr, payload.len());
            self.stats.segs_out += 1;
            out.push(TcpAction::Send(rst, Vec::new()));
            out.push(TcpAction::Reset);
            self.enter_closed(out);
            return;
        }
        // Step 4: ACK processing.
        if !repr.flags.ack {
            return;
        }
        let ack = repr.ack_num;
        if self.state == State::SynReceived {
            if ack.gt(self.snd_una) && ack.le(self.snd_nxt) {
                self.transition(State::Established);
                self.snd_una = ack;
                self.retransmit_count = 0;
                self.update_send_window(repr);
                self.cancel_timer(TcpTimer::Retransmit, out);
                out.push(TcpAction::Connected);
            } else {
                let rst = Self::rst_for(self.local, repr, payload.len());
                self.stats.segs_out += 1;
                out.push(TcpAction::Send(rst, Vec::new()));
                return;
            }
        }
        if ack.gt(self.snd_nxt) {
            // Acks something not yet sent.
            self.emit_ack(out);
            return;
        }
        let prev_wnd = self.snd_wnd;
        let window_opened = self.update_send_window(repr);
        if ack.gt(self.snd_una) {
            self.process_new_ack(ack, now, out);
        } else if ack == self.snd_una
            && payload.is_empty()
            && !repr.flags.fin
            && self.snd_nxt != self.snd_una
            && self.snd_wnd == prev_wnd
        {
            // RFC 5681 duplicate-ACK test: the advertised window must be
            // unchanged. A receiver draining its buffer sends pure window
            // updates that repeat the ack number; counting those as dup
            // ACKs fires spurious fast retransmits.
            self.process_dup_ack(now, out);
        }
        if window_opened {
            self.cancel_timer(TcpTimer::Persist, out);
            self.persist_backoff = 0;
        }

        // Step 5: payload.
        if !payload.is_empty() {
            self.process_payload(repr.seq, payload, out);
        }
        // Step 6: FIN.
        if repr.flags.fin {
            self.process_fin(repr.seq + payload.len() as u32, now, out);
        }
        // ACK strategy for received data.
        if self.ack_pending > 0 {
            if !self.cfg.delayed_ack || self.ack_pending >= self.cfg.ack_every {
                self.emit_ack(out);
            } else if !self.timer_armed(TcpTimer::DelayedAck) {
                let deadline = now + self.cfg.delayed_ack_timeout;
                self.arm_timer(TcpTimer::DelayedAck, deadline, out);
            }
        }
        // Send anything newly permitted (freed buffer, opened window).
        self.output(now, out);
    }

    fn process_new_ack(&mut self, ack: SeqNum, now: Nanos, out: &mut Vec<TcpAction>) {
        let fin_acked = self.snd_fin.is_some_and(|f| ack.gt(f));
        let acked_total = ack.dist(self.snd_una).max(0) as usize;
        let data_acked = acked_total - usize::from(fin_acked);
        let drain = data_acked.min(self.send_buf.len());
        self.send_buf.drain(..drain);
        self.snd_una = ack;
        self.retransmit_count = 0;
        self.dup_acks = 0;

        // RTT sample if our probe segment is covered.
        if let Some((probe_seq, sent_at)) = self.rtt_probe {
            if ack.ge(probe_seq) {
                let rtt = now.saturating_sub(sent_at);
                self.rtt.sample(rtt);
                self.stats.rtt_samples += 1;
                self.rtt_probe = None;
                unp_trace::emit(None, || unp_trace::Event::RttSample {
                    local_port: self.local.1,
                    remote_port: self.remote.1,
                    rtt,
                });
            }
        }
        // Congestion window growth.
        if self.cfg.congestion != CongestionControl::Off {
            if self.cwnd < self.ssthresh {
                self.cwnd += self.snd_mss; // slow start
            } else {
                self.cwnd += (self.snd_mss * self.snd_mss / self.cwnd).max(1);
            }
        }
        // Retransmit timer: restart if data remains outstanding.
        self.cancel_timer(TcpTimer::Retransmit, out);
        if self.snd_nxt != self.snd_una {
            let rto = self.rtt.rto();
            self.arm_timer(TcpTimer::Retransmit, now + rto, out);
        }
        if drain > 0 {
            out.push(TcpAction::SendSpace);
        }

        // Close-sequence state transitions on FIN acknowledgment.
        if fin_acked {
            match self.state {
                State::FinWait1 => {
                    self.transition(State::FinWait2);
                }
                State::Closing => {
                    self.transition(State::TimeWait);
                    self.arm_timer(TcpTimer::TimeWait, now + self.cfg.time_wait, out);
                }
                State::LastAck => {
                    self.enter_closed(out);
                }
                _ => {}
            }
        }
    }

    fn process_dup_ack(&mut self, now: Nanos, out: &mut Vec<TcpAction>) {
        self.dup_acks += 1;
        self.stats.dup_acks_in += 1;
        if self.dup_acks == 3 {
            // Fast retransmit.
            self.stats.fast_rexmit += 1;
            if self.cfg.congestion != CongestionControl::Off {
                let flight = self.snd_nxt.dist(self.snd_una).max(0) as usize;
                self.ssthresh = (flight / 2).max(2 * self.snd_mss);
                self.cwnd = match self.cfg.congestion {
                    CongestionControl::Tahoe => self.snd_mss,
                    CongestionControl::Reno => self.ssthresh + 3 * self.snd_mss,
                    CongestionControl::Off => unreachable!(),
                };
            }
            self.retransmit_head(now, out, unp_trace::RexmitReason::DupAck);
            // Restart the RTO for the retransmission.
            let rto = self.rtt.rto();
            self.arm_timer(TcpTimer::Retransmit, now + rto, out);
        } else if self.dup_acks > 3 && self.cfg.congestion == CongestionControl::Reno {
            self.cwnd += self.snd_mss; // window inflation during recovery
        }
    }

    fn process_payload(&mut self, seq: SeqNum, payload: &[u8], out: &mut Vec<TcpAction>) {
        // No new data is accepted once the peer's FIN sequence is known.
        if let Some(fin) = self.peer_fin {
            if seq.ge(fin) {
                return;
            }
        }
        if seq.gt(self.rcv_nxt) {
            // Out of order: hold and send an immediate duplicate ACK.
            let window_edge = self.rcv_nxt + self.recv_window();
            let room = window_edge.dist(seq).max(0) as usize;
            let take = payload.len().min(room);
            if take > 0 {
                self.ooo.insert(self.rcv_nxt, seq, &payload[..take]);
                unp_trace::emit(None, || unp_trace::Event::TcpOooHold {
                    local_port: self.local.1,
                    remote_port: self.remote.1,
                    seq: seq.0,
                    len: take as u32,
                });
            }
            self.emit_ack(out);
            return;
        }
        // Trim the duplicate prefix.
        let skip = self.rcv_nxt.dist(seq).max(0) as usize;
        if skip >= payload.len() {
            // Entirely old data: ack it again.
            self.ack_pending += 1;
            return;
        }
        let fresh = &payload[skip..];
        let room = self.cfg.recv_buf - self.recv_buf.len();
        let take = fresh.len().min(room);
        self.recv_buf.extend(&fresh[..take]);
        self.rcv_nxt += take as u32;
        // Drain any now-contiguous held segments.
        let drained = self.ooo.take_contiguous(self.rcv_nxt);
        if !drained.is_empty() {
            let room = self.cfg.recv_buf - self.recv_buf.len();
            let take2 = drained.len().min(room);
            self.recv_buf.extend(&drained[..take2]);
            self.rcv_nxt += take2 as u32;
        }
        if take > 0 {
            self.ack_pending += 1;
            out.push(TcpAction::DataAvailable);
        }
    }

    fn process_fin(&mut self, fin_seq: SeqNum, now: Nanos, out: &mut Vec<TcpAction>) {
        if self.peer_fin.is_none() {
            self.peer_fin = Some(fin_seq);
        }
        if self.rcv_nxt == fin_seq {
            // FIN is in order: consume it.
            self.rcv_nxt += 1;
            out.push(TcpAction::PeerClosed);
            match self.state {
                State::Established => self.transition(State::CloseWait),
                State::FinWait1 => {
                    // If our FIN were already acked we'd be in FinWait2.
                    self.transition(State::Closing);
                }
                State::FinWait2 => {
                    self.transition(State::TimeWait);
                    self.arm_timer(TcpTimer::TimeWait, now + self.cfg.time_wait, out);
                }
                _ => {}
            }
            self.emit_ack(out);
        } else if self.rcv_nxt.gt(fin_seq) {
            // Retransmitted FIN we already consumed: re-ack.
            self.emit_ack(out);
            if self.state == State::TimeWait {
                self.arm_timer(TcpTimer::TimeWait, now + self.cfg.time_wait, out);
            }
        }
        // else: FIN beyond a data gap; it will be consumed when the gap
        // fills (the peer will retransmit).
    }
}
