//! TCP configuration knobs.
//!
//! These are also the hooks for the paper's "application-specific
//! knowledge" theme: "Simple approaches include providing a set of canned
//! options that determine certain characteristics of a protocol" (§5).
//! [`TcpConfig::bulk_transfer`] and [`TcpConfig::low_latency`] are two such
//! canned variants, exercised by the `app_specific_tuning` example and the
//! ablation benchmarks.

use crate::Nanos;

const MILLIS: Nanos = 1_000_000;
const SECONDS: Nanos = 1_000_000_000;

/// Congestion-control algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionControl {
    /// No congestion window (the pre-Tahoe stack shape the paper's LAN
    /// numbers reflect; flow control only).
    Off,
    /// Slow start + congestion avoidance, retransmit collapses cwnd to
    /// one MSS (Tahoe shape).
    Tahoe,
    /// Tahoe plus fast recovery: three duplicate ACKs halve the window
    /// instead of collapsing it (Reno shape).
    Reno,
}

/// Tunables for one connection.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// MSS we advertise (per-link: 1460 for a 1500-byte MTU).
    pub mss_local: usize,
    /// MSS assumed for the peer when no option is received (RFC 1122: 536).
    pub mss_default: usize,
    /// Send buffer capacity in bytes.
    pub send_buf: usize,
    /// Receive buffer capacity in bytes (advertised window ceiling).
    pub recv_buf: usize,
    /// Nagle's algorithm (coalesce sub-MSS writes while data is in flight).
    pub nagle: bool,
    /// Delayed acknowledgments.
    pub delayed_ack: bool,
    /// Delayed-ACK flush interval.
    pub delayed_ack_timeout: Nanos,
    /// Acknowledge every `ack_every` full segments even when delaying.
    pub ack_every: u32,
    /// Minimum retransmission timeout.
    pub rto_min: Nanos,
    /// Maximum retransmission timeout.
    pub rto_max: Nanos,
    /// Initial retransmission timeout before any RTT sample.
    pub rto_initial: Nanos,
    /// 2·MSL: how long `TIME_WAIT` quarantines the connection pair.
    pub time_wait: Nanos,
    /// Give up and reset after this many consecutive retransmissions.
    pub max_retransmits: u32,
    /// Congestion control algorithm.
    pub congestion: CongestionControl,
    /// Keepalive probe interval for idle connections (`None` disables,
    /// the 4.3BSD default).
    pub keepalive: Option<Nanos>,
    /// Unanswered keepalive probes tolerated before resetting.
    pub max_keepalive_probes: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss_local: 1460,
            mss_default: 536,
            send_buf: 16 * 1024,
            recv_buf: 16 * 1024,
            nagle: true,
            delayed_ack: true,
            delayed_ack_timeout: 200 * MILLIS,
            ack_every: 2,
            rto_min: 200 * MILLIS,
            rto_max: 64 * SECONDS,
            rto_initial: SECONDS,
            time_wait: 60 * SECONDS,
            max_retransmits: 12,
            congestion: CongestionControl::Off,
            keepalive: None,
            max_keepalive_probes: 5,
        }
    }
}

impl TcpConfig {
    /// Canned variant for throughput-intensive applications: big buffers,
    /// Nagle on, standard delayed ACKs.
    pub fn bulk_transfer() -> TcpConfig {
        TcpConfig {
            send_buf: 64 * 1024,
            recv_buf: 64 * 1024,
            ..TcpConfig::default()
        }
    }

    /// Canned variant for latency-critical request/response traffic:
    /// Nagle off (no coalescing delay), immediate ACKs.
    pub fn low_latency() -> TcpConfig {
        TcpConfig {
            nagle: false,
            delayed_ack: false,
            ..TcpConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_variants_differ_where_it_matters() {
        let bulk = TcpConfig::bulk_transfer();
        let lat = TcpConfig::low_latency();
        assert!(bulk.send_buf > lat.send_buf);
        assert!(bulk.nagle && !lat.nagle);
        assert!(bulk.delayed_ack && !lat.delayed_ack);
    }

    #[test]
    fn defaults_sane() {
        let c = TcpConfig::default();
        assert!(c.rto_min < c.rto_initial);
        assert!(c.rto_initial < c.rto_max);
        assert!(c.mss_local >= c.mss_default);
    }
}
