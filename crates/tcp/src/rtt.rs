//! Round-trip time estimation: Jacobson/Karels SRTT + RTTVAR with Karn's
//! rule, the algorithm 4.3BSD(-Tahoe) shipped and the paper's stacks use.

use crate::Nanos;

/// Smoothed RTT estimator producing retransmission timeouts.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    /// Smoothed RTT, ns (None until the first sample).
    srtt: Option<Nanos>,
    /// Mean deviation, ns.
    rttvar: Nanos,
    rto_min: Nanos,
    rto_max: Nanos,
    rto_initial: Nanos,
    /// Exponential backoff multiplier (log2), reset on new samples.
    backoff: u32,
}

impl RttEstimator {
    /// Creates an estimator with the given RTO clamps.
    pub fn new(rto_initial: Nanos, rto_min: Nanos, rto_max: Nanos) -> RttEstimator {
        RttEstimator {
            srtt: None,
            rttvar: 0,
            rto_min,
            rto_max,
            rto_initial,
            backoff: 0,
        }
    }

    /// Feeds one RTT measurement (Karn's rule: callers must not sample
    /// retransmitted segments). Resets backoff.
    pub fn sample(&mut self, rtt: Nanos) {
        match self.srtt {
            None => {
                // RFC 6298 initialization (same shape as Jacobson '88).
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let delta = srtt.abs_diff(rtt);
                // rttvar = 3/4 rttvar + 1/4 |delta|
                self.rttvar = (3 * self.rttvar + delta) / 4;
                // srtt = 7/8 srtt + 1/8 rtt
                self.srtt = Some((7 * srtt + rtt) / 8);
            }
        }
        self.backoff = 0;
    }

    /// Current RTO: `srtt + 4·rttvar`, clamped, with backoff applied.
    pub fn rto(&self) -> Nanos {
        let base = match self.srtt {
            Some(srtt) => (srtt + 4 * self.rttvar).clamp(self.rto_min, self.rto_max),
            None => self.rto_initial,
        };
        base.saturating_mul(1 << self.backoff.min(16))
            .min(self.rto_max)
    }

    /// Doubles the RTO after a retransmission timeout.
    pub fn on_retransmit(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// Current backoff exponent (for stats/tests).
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// True if at least one sample was taken.
    pub fn has_sample(&self) -> bool {
        self.srtt.is_some()
    }

    /// Smoothed RTT, if sampled.
    pub fn srtt(&self) -> Option<Nanos> {
        self.srtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Nanos = 1_000_000;

    fn est() -> RttEstimator {
        RttEstimator::new(1000 * MS, 200 * MS, 64_000 * MS)
    }

    #[test]
    fn initial_rto_used_before_samples() {
        let e = est();
        assert!(!e.has_sample());
        assert_eq!(e.rto(), 1000 * MS);
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = est();
        e.sample(100 * MS);
        assert_eq!(e.srtt(), Some(100 * MS));
        // rto = srtt + 4*(srtt/2) = 300ms.
        assert_eq!(e.rto(), 300 * MS);
    }

    #[test]
    fn stable_rtt_converges_and_clamps_to_min() {
        let mut e = est();
        for _ in 0..50 {
            e.sample(10 * MS);
        }
        // Variance decays toward 0; RTO floors at rto_min.
        assert_eq!(e.rto(), 200 * MS);
        let srtt = e.srtt().unwrap();
        assert!((9 * MS..=11 * MS).contains(&srtt), "srtt={srtt}");
    }

    #[test]
    fn variance_raises_rto() {
        let mut stable = est();
        let mut jittery = est();
        for i in 0..50u64 {
            stable.sample(50 * MS);
            jittery.sample(if i % 2 == 0 { 10 * MS } else { 90 * MS });
        }
        assert!(jittery.rto() > stable.rto());
    }

    #[test]
    fn backoff_doubles_and_new_sample_resets() {
        let mut e = est();
        e.sample(100 * MS); // rto 300ms
        e.on_retransmit();
        assert_eq!(e.rto(), 600 * MS);
        e.on_retransmit();
        assert_eq!(e.rto(), 1200 * MS);
        e.sample(100 * MS);
        assert_eq!(e.backoff(), 0);
        assert!(e.rto() <= 300 * MS);
    }

    #[test]
    fn rto_capped_at_max() {
        let mut e = est();
        e.sample(100 * MS);
        for _ in 0..30 {
            e.on_retransmit();
        }
        assert_eq!(e.rto(), 64_000 * MS);
    }
}
