//! `unp-tcp` — the TCP protocol library.
//!
//! "The protocol library is the heart of the overall protocol
//! implementation" (paper §3.2). The paper chose TCP deliberately: "it is a
//! real protocol whose level of detail and functionality match that of
//! other communication protocols; choosing a simpler protocol like UDP
//! would be less convincing."
//!
//! This crate is a from-scratch 4.3BSD-class TCP:
//!
//! * the full RFC 793 state machine (including simultaneous open, both
//!   close orders, `TIME_WAIT`/2MSL);
//! * sliding-window flow control with receiver window advertisement and
//!   silly-window avoidance, MSS negotiation, Nagle's algorithm,
//!   delayed acknowledgments, zero-window probing (persist timer);
//! * Jacobson SRTT/RTTVAR retransmission timing with Karn's rule and
//!   exponential backoff; fast retransmit on three duplicate ACKs;
//! * out-of-order segment reassembly;
//! * optional slow-start/congestion-avoidance (Tahoe or Reno shape) — off
//!   by default, matching the stock protocol stack the paper benchmarks on
//!   unloaded LANs.
//!
//! Like every protocol component in this reproduction, [`Tcb`] is a pure
//! state machine: inputs are parsed segments, user calls, timer firings and
//! the current time; outputs are [`TcpAction`]s that the hosting
//! organization routes and charges costs for. The same code runs inside
//! the simulated Ultrix kernel, the Mach single server, and the user-level
//! library — mirroring the paper's "apples to apples" methodology.

pub mod config;
pub mod loopback;
pub mod reasm;
pub mod rtt;
pub mod tcb;

pub use config::{CongestionControl, TcpConfig};
pub use reasm::OooBuffer;
pub use rtt::RttEstimator;
pub use tcb::{ListenTcb, State, Tcb, TcpAction, TcpTimer};

/// Time in nanoseconds (shared convention with `unp-sim`).
pub type Nanos = u64;

/// Errors surfaced to the socket layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// Operation invalid in the current state.
    InvalidState,
    /// The connection was reset by the peer.
    ConnectionReset,
    /// The send buffer cannot accept more data right now.
    WouldBlock,
    /// The connection is closing; no more data may be sent.
    Closing,
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::InvalidState => write!(f, "invalid state"),
            TcpError::ConnectionReset => write!(f, "connection reset"),
            TcpError::WouldBlock => write!(f, "would block"),
            TcpError::Closing => write!(f, "closing"),
        }
    }
}

impl std::error::Error for TcpError {}
