//! Out-of-order segment reassembly for the TCP receive path.
//!
//! Holds payload bytes that arrived beyond `rcv_nxt`, keyed by absolute
//! sequence number, merging overlaps; when the in-order edge advances, the
//! contiguous prefix is surrendered to the receive buffer.

use std::collections::BTreeMap;

use unp_wire::SeqNum;

/// Buffer of above-window-edge segments awaiting their predecessors.
#[derive(Debug, Default)]
pub struct OooBuffer {
    /// Segments keyed by the *offset* of their first byte from a fixed
    /// base, so ordering survives sequence-number wraparound. The base is
    /// the `rcv_nxt` at first insertion after each drain.
    segs: BTreeMap<u64, Vec<u8>>,
    base: Option<SeqNum>,
    bytes: usize,
}

impl OooBuffer {
    /// Creates an empty buffer.
    pub fn new() -> OooBuffer {
        OooBuffer::default()
    }

    /// Total bytes held (counting overlaps once).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    fn offset_of(&mut self, rcv_nxt: SeqNum, seq: SeqNum) -> u64 {
        let base = *self.base.get_or_insert(rcv_nxt);
        // seq >= base is guaranteed by callers (segment is beyond rcv_nxt,
        // and base <= rcv_nxt).
        seq.dist(base) as u64
    }

    /// Stores a segment starting at `seq` (which must be `> rcv_nxt` and
    /// within the receive window, enforced by the caller). Overlapping
    /// bytes are deduplicated; existing data wins (first arrival kept).
    pub fn insert(&mut self, rcv_nxt: SeqNum, seq: SeqNum, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let mut start = self.offset_of(rcv_nxt, seq);
        let end = start + data.len() as u64;
        let mut data = data.to_vec();

        // Trim against the predecessor segment if it overlaps our front.
        if let Some((&pstart, pdata)) = self.segs.range(..=start).next_back() {
            let pend = pstart + pdata.len() as u64;
            if pend >= end {
                return; // fully covered
            }
            if pend > start {
                data.drain(..(pend - start) as usize);
                start = pend;
            }
        }
        // Swallow or trim successors that overlap our tail.
        while let Some((&nstart, ndata)) = self.segs.range(start..).next() {
            if nstart >= end {
                break;
            }
            let nend = nstart + ndata.len() as u64;
            if nend <= end {
                // Fully covered by us: replace (keep our copy of the range).
                self.bytes -= ndata.len();
                self.segs.remove(&nstart);
            } else {
                // Partial overlap: trim our tail; existing data wins there.
                data.truncate((nstart - start) as usize);
                break;
            }
        }
        if !data.is_empty() {
            self.bytes += data.len();
            self.segs.insert(start, data);
        }
    }

    /// Pops the contiguous run starting exactly at `rcv_nxt`, if present.
    /// Returns the bytes; the caller advances `rcv_nxt` by their length.
    pub fn take_contiguous(&mut self, rcv_nxt: SeqNum) -> Vec<u8> {
        let Some(base) = self.base else {
            return Vec::new();
        };
        let mut edge = rcv_nxt.dist(base) as u64;
        let mut out = Vec::new();
        while let Some((&start, _)) = self.segs.first_key_value() {
            if start > edge {
                break;
            }
            let (start, data) = self.segs.pop_first().expect("peeked");
            let dend = start + data.len() as u64;
            self.bytes -= data.len();
            if dend <= edge {
                continue; // stale (already delivered)
            }
            let skip = (edge - start) as usize;
            out.extend_from_slice(&data[skip..]);
            edge = dend;
        }
        if self.segs.is_empty() {
            self.base = None;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u32) -> SeqNum {
        SeqNum(v)
    }

    #[test]
    fn gap_then_fill() {
        let mut b = OooBuffer::new();
        // rcv_nxt = 100; segment at 110 arrives early.
        b.insert(s(100), s(110), b"later");
        assert_eq!(b.take_contiguous(s(100)), b"" as &[u8]);
        // In-order edge reaches 110.
        assert_eq!(b.take_contiguous(s(110)), b"later");
        assert!(b.is_empty());
        assert_eq!(b.bytes(), 0);
    }

    #[test]
    fn multiple_gaps_drain_in_order() {
        let mut b = OooBuffer::new();
        b.insert(s(100), s(120), b"cc");
        b.insert(s(100), s(105), b"aa");
        b.insert(s(100), s(110), b"bb");
        // Edge at 105: only "aa" contiguous.
        assert_eq!(b.take_contiguous(s(105)), b"aa");
        // Edge jumps to 110 (107..110 delivered elsewhere): "bb".
        assert_eq!(b.take_contiguous(s(110)), b"bb");
        assert_eq!(b.take_contiguous(s(120)), b"cc");
    }

    #[test]
    fn adjacent_segments_merge_on_take() {
        let mut b = OooBuffer::new();
        b.insert(s(0), s(10), b"abc");
        b.insert(s(0), s(13), b"def");
        assert_eq!(b.take_contiguous(s(10)), b"abcdef");
    }

    #[test]
    fn duplicate_segment_ignored() {
        let mut b = OooBuffer::new();
        b.insert(s(0), s(10), b"abc");
        b.insert(s(0), s(10), b"abc");
        assert_eq!(b.bytes(), 3);
        assert_eq!(b.take_contiguous(s(10)), b"abc");
    }

    #[test]
    fn overlap_front_kept_existing() {
        let mut b = OooBuffer::new();
        b.insert(s(0), s(10), b"ABCD"); // covers 10..14
        b.insert(s(0), s(12), b"xxYZ"); // 12..16; 12..14 overlap
        assert_eq!(b.take_contiguous(s(10)), b"ABCDYZ");
    }

    #[test]
    fn overlap_tail_kept_existing() {
        let mut b = OooBuffer::new();
        b.insert(s(0), s(14), b"WXYZ"); // 14..18
        b.insert(s(0), s(10), b"abcdEF"); // 10..16; tail 14..16 overlaps
        assert_eq!(b.take_contiguous(s(10)), b"abcdWXYZ");
    }

    #[test]
    fn contained_segment_replaced() {
        let mut b = OooBuffer::new();
        b.insert(s(0), s(12), b"mm"); // 12..14
        b.insert(s(0), s(10), b"abcdef"); // 10..16 swallows it
        assert_eq!(b.bytes(), 6);
        assert_eq!(b.take_contiguous(s(10)), b"abcdef");
    }

    #[test]
    fn works_across_sequence_wrap() {
        let near = SeqNum(u32::MAX - 2);
        let mut b = OooBuffer::new();
        // rcv_nxt just below wrap; segment starts after the wrap point.
        b.insert(near, near + 6, b"post");
        assert_eq!(b.take_contiguous(near + 6), b"post");
    }

    #[test]
    fn stale_data_below_edge_dropped() {
        let mut b = OooBuffer::new();
        b.insert(s(0), s(10), b"abcdef");
        // Edge has advanced past part of the buffered run.
        assert_eq!(b.take_contiguous(s(13)), b"def");
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut b = OooBuffer::new();
        b.insert(s(0), s(10), b"");
        assert!(b.is_empty());
    }
}
