//! A self-contained two-endpoint harness that runs real `Tcb` pairs over a
//! configurable channel (latency, loss, duplication, reordering,
//! corruption) with real timers.
//!
//! Segments travel as *wire bytes* — built and re-parsed through
//! `unp-wire`, checksums verified on receipt — so the harness exercises the
//! full serialize/deserialize path. Used by this crate's integration and
//! property tests and by the benchmark suite; it plays the role smoltcp's
//! loopback tests play for that stack.

use std::collections::VecDeque;

use unp_wire::{Ipv4Addr, TcpPacket, TcpRepr};

use crate::tcb::{ListenTcb, State, Tcb, TcpAction, TcpTimer};
use crate::{Nanos, TcpConfig};

/// Which endpoint, for addressing within the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The active opener.
    A,
    /// The passive listener.
    B,
}

impl Side {
    fn other(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }
}

/// Per-direction impairment rates — the reverse-path override for
/// asymmetric channels (a clean forward path with a lossy ACK path, or
/// vice versa). Shares the world-level `FaultPlan` vocabulary.
#[derive(Debug, Clone, Copy)]
pub struct DirFaults {
    /// Probability a segment is silently dropped.
    pub loss: f64,
    /// Probability a segment is delivered twice.
    pub duplicate: f64,
    /// Probability a random byte is flipped in flight.
    pub corrupt: f64,
}

impl DirFaults {
    /// No impairment.
    pub fn clean() -> DirFaults {
        DirFaults {
            loss: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
        }
    }

    /// The standard hostile mix: loss at `loss`, duplication and
    /// corruption at half that.
    pub fn lossy(loss: f64) -> DirFaults {
        DirFaults {
            loss,
            duplicate: loss / 2.0,
            corrupt: loss / 2.0,
        }
    }
}

/// Channel impairment model. Rates are per-segment probabilities in
/// [0, 1], applied with a deterministic xorshift PRNG.
#[derive(Debug, Clone, Copy)]
pub struct ChannelModel {
    /// One-way latency.
    pub latency: Nanos,
    /// Probability a segment is silently dropped.
    pub loss: f64,
    /// Probability a segment is delivered twice.
    pub duplicate: f64,
    /// Extra random delay (uniform in [0, jitter]) — values larger than
    /// the inter-segment gap cause reordering.
    pub jitter: Nanos,
    /// Probability a random payload byte is flipped in flight (checksum
    /// must catch it).
    pub corrupt: f64,
    /// PRNG seed.
    pub seed: u64,
    /// Per-direction override for B→A traffic: when set, the reverse
    /// path uses these rates instead of the shared `loss`/`duplicate`/
    /// `corrupt` (jitter stays shared — it models the medium, not a
    /// direction).
    pub reverse: Option<DirFaults>,
    /// A burst-loss window `[start, end)`: every segment handed to the
    /// channel inside it, either direction, is dropped outright (a cable
    /// pull, not random loss). Drops are counted in
    /// [`Loopback::outage_drops`].
    pub outage: Option<(Nanos, Nanos)>,
}

impl ChannelModel {
    /// A perfect 100 µs channel.
    pub fn clean() -> ChannelModel {
        ChannelModel {
            latency: 100_000,
            loss: 0.0,
            duplicate: 0.0,
            jitter: 0,
            corrupt: 0.0,
            seed: 1,
            reverse: None,
            outage: None,
        }
    }

    /// A hostile channel for robustness tests.
    pub fn lossy(seed: u64, loss: f64) -> ChannelModel {
        ChannelModel {
            loss,
            duplicate: loss / 2.0,
            jitter: 300_000,
            corrupt: loss / 2.0,
            seed,
            ..ChannelModel::clean()
        }
    }

    /// Sets the reverse-path (B→A) override.
    pub fn with_reverse(mut self, reverse: DirFaults) -> ChannelModel {
        self.reverse = Some(reverse);
        self
    }

    /// Sets a burst-loss outage window `[start, end)`.
    pub fn with_outage(mut self, start: Nanos, end: Nanos) -> ChannelModel {
        self.outage = Some((start, end));
        self
    }
}

/// Deterministic xorshift64* PRNG (no external dependency; reproducible).
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Accumulated notifications per endpoint.
#[derive(Debug, Default, Clone)]
pub struct Events {
    /// `Connected` seen.
    pub connected: bool,
    /// `Reset` seen.
    pub reset: bool,
    /// `PeerClosed` seen.
    pub peer_closed: bool,
    /// `ConnClosed` seen.
    pub closed: bool,
    /// Count of `DataAvailable`.
    pub data_available: u64,
    /// Count of `SendSpace`.
    pub send_space: u64,
}

struct Endpoint {
    addr: Ipv4Addr,
    tcb: Option<Tcb>,
    timers: Vec<(Nanos, TcpTimer)>,
    events: Events,
    /// Application receive sink.
    received: Vec<u8>,
    /// Application bytes queued but not yet accepted by the send buffer.
    to_send: VecDeque<u8>,
    /// Whether the app wants to close once `to_send` drains.
    close_pending: bool,
}

impl Endpoint {
    fn new(addr: Ipv4Addr) -> Endpoint {
        Endpoint {
            addr,
            tcb: None,
            timers: Vec::new(),
            events: Events::default(),
            received: Vec::new(),
            to_send: VecDeque::new(),
            close_pending: false,
        }
    }
}

struct FlightSeg {
    deliver_at: Nanos,
    seq: u64,
    to: Side,
    bytes: Vec<u8>,
}

/// The two-endpoint harness. See module docs.
pub struct Loopback {
    now: Nanos,
    a: Endpoint,
    b: Endpoint,
    listener_b: Option<ListenTcb>,
    chan: ChannelModel,
    rng: XorShift,
    flight: Vec<FlightSeg>,
    flight_seq: u64,
    /// Total segments handed to the channel (pre-impairment).
    pub segments_carried: u64,
    /// Segments swallowed by the channel's outage window.
    pub outage_drops: u64,
}

const ADDR_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const ADDR_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const PORT_A: u16 = 40000;
const PORT_B: u16 = 80;

impl Loopback {
    /// Creates a harness: B listens, A connects (the SYN is in flight).
    pub fn new(cfg_a: TcpConfig, cfg_b: TcpConfig, chan: ChannelModel) -> Loopback {
        let mut lb = Loopback {
            now: 0,
            a: Endpoint::new(ADDR_A),
            b: Endpoint::new(ADDR_B),
            listener_b: Some(ListenTcb::new((ADDR_B, PORT_B), cfg_b)),
            chan,
            rng: XorShift(chan.seed ^ 0x9E37_79B9_7F4A_7C15),
            flight: Vec::new(),
            flight_seq: 0,
            segments_carried: 0,
            outage_drops: 0,
        };
        let (tcb, actions) = Tcb::connect((ADDR_A, PORT_A), (ADDR_B, PORT_B), cfg_a, 1000, 0);
        lb.a.tcb = Some(tcb);
        lb.apply(Side::A, actions);
        lb
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// State of an endpoint's connection block (Closed if none).
    pub fn state(&self, side: Side) -> State {
        self.ep(side).tcb.as_ref().map_or(State::Closed, Tcb::state)
    }

    /// Events accumulated by an endpoint.
    pub fn events(&self, side: Side) -> &Events {
        &self.ep(side).events
    }

    /// Everything an endpoint's application has read so far.
    pub fn received(&self, side: Side) -> &[u8] {
        &self.ep(side).received
    }

    /// Direct access to a TCB for assertions.
    pub fn tcb(&self, side: Side) -> Option<&Tcb> {
        self.ep(side).tcb.as_ref()
    }

    fn ep(&self, side: Side) -> &Endpoint {
        match side {
            Side::A => &self.a,
            Side::B => &self.b,
        }
    }

    fn ep_mut(&mut self, side: Side) -> &mut Endpoint {
        match side {
            Side::A => &mut self.a,
            Side::B => &mut self.b,
        }
    }

    /// Queues application data for transmission from `side`.
    pub fn send(&mut self, side: Side, data: &[u8]) {
        self.ep_mut(side).to_send.extend(data);
        self.pump_app(side);
    }

    /// Requests an orderly close from `side` once its queued data drains.
    pub fn close(&mut self, side: Side) {
        self.ep_mut(side).close_pending = true;
        self.pump_app(side);
    }

    /// Aborts from `side` (RST).
    pub fn abort(&mut self, side: Side) {
        let now = self.now;
        let _ = now;
        if let Some(tcb) = self.ep_mut(side).tcb.as_mut() {
            let actions = tcb.abort();
            self.apply(side, actions);
        }
    }

    /// Pushes app-level pending work into the TCB (writes, close).
    fn pump_app(&mut self, side: Side) {
        let now = self.now;
        let ep = self.ep_mut(side);
        let Some(tcb) = ep.tcb.as_mut() else { return };
        let mut collected = Vec::new();
        // Write as much as the send buffer accepts.
        while !ep.to_send.is_empty() {
            let chunk: Vec<u8> = ep.to_send.iter().copied().take(4096).collect();
            match tcb.send(&chunk, now) {
                Ok((0, actions)) => {
                    collected.extend(actions);
                    break;
                }
                Ok((n, actions)) => {
                    ep.to_send.drain(..n);
                    collected.extend(actions);
                }
                Err(_) => break,
            }
        }
        // A close() in SYN-SENT deletes the block (RFC 793), so an app that
        // wrote data and closed immediately would lose it; defer the close
        // until the handshake completes, as the socket layer does.
        if ep.close_pending && ep.to_send.is_empty() && tcb.state().is_synchronized() {
            if let Ok(actions) = tcb.close(now) {
                collected.extend(actions);
            }
            ep.close_pending = false;
        }
        self.apply(side, collected);
    }

    /// Drains readable data into the endpoint's `received` sink.
    fn drain_reads(&mut self, side: Side) {
        let now = self.now;
        let ep = self.ep_mut(side);
        let Some(tcb) = ep.tcb.as_mut() else { return };
        loop {
            let (data, actions) = tcb.recv(usize::MAX, now);
            let done = data.is_empty();
            ep.received.extend_from_slice(&data);
            if !actions.is_empty() {
                self.apply(side, actions);
                return self.drain_reads(side);
            }
            if done {
                break;
            }
        }
    }

    /// Applies TCB actions: transmit via the channel, arm timers, record
    /// notifications.
    fn apply(&mut self, side: Side, actions: Vec<TcpAction>) {
        for action in actions {
            match action {
                TcpAction::Send(repr, payload) => self.transmit(side, repr, payload),
                TcpAction::SetTimer(kind, deadline) => {
                    let ep = self.ep_mut(side);
                    ep.timers.retain(|&(_, k)| k != kind);
                    ep.timers.push((deadline, kind));
                }
                TcpAction::CancelTimer(kind) => {
                    self.ep_mut(side).timers.retain(|&(_, k)| k != kind);
                }
                TcpAction::Connected => {
                    self.ep_mut(side).events.connected = true;
                    self.pump_app(side);
                }
                TcpAction::DataAvailable => {
                    self.ep_mut(side).events.data_available += 1;
                    self.drain_reads(side);
                }
                TcpAction::SendSpace => {
                    self.ep_mut(side).events.send_space += 1;
                    self.pump_app(side);
                }
                TcpAction::PeerClosed => {
                    self.ep_mut(side).events.peer_closed = true;
                    self.drain_reads(side);
                }
                TcpAction::Reset => {
                    self.ep_mut(side).events.reset = true;
                }
                TcpAction::ConnClosed => {
                    self.ep_mut(side).events.closed = true;
                    self.ep_mut(side).timers.clear();
                }
            }
        }
    }

    fn transmit(&mut self, from: Side, repr: TcpRepr, payload: Vec<u8>) {
        self.segments_carried += 1;
        let (src, dst) = match from {
            Side::A => (self.a.addr, self.b.addr),
            Side::B => (self.b.addr, self.a.addr),
        };
        let mut bytes = repr.build_segment(src, dst, &payload);
        if let Some((start, end)) = self.chan.outage {
            if self.now >= start && self.now < end {
                self.outage_drops += 1;
                return;
            }
        }
        // The reverse-path override applies to B→A traffic; with no
        // override both directions share the model's rates (and the RNG
        // draw sequence is unchanged from the symmetric model).
        let dir = match (from, self.chan.reverse) {
            (Side::B, Some(d)) => d,
            _ => DirFaults {
                loss: self.chan.loss,
                duplicate: self.chan.duplicate,
                corrupt: self.chan.corrupt,
            },
        };
        if self.rng.chance(dir.loss) {
            return;
        }
        if self.rng.chance(dir.corrupt) {
            let idx = self.rng.below(bytes.len() as u64) as usize;
            bytes[idx] ^= 0x20;
        }
        let copies = if self.rng.chance(dir.duplicate) { 2 } else { 1 };
        for _ in 0..copies {
            let jitter = self.rng.below(self.chan.jitter + 1);
            let deliver_at = self.now + self.chan.latency + jitter;
            let seq = self.flight_seq;
            self.flight_seq += 1;
            self.flight.push(FlightSeg {
                deliver_at,
                seq,
                to: from.other(),
                bytes: bytes.clone(),
            });
        }
    }

    fn deliver(&mut self, to: Side, bytes: Vec<u8>) {
        let (src, dst) = match to {
            Side::A => (self.b.addr, self.a.addr),
            Side::B => (self.a.addr, self.b.addr),
        };
        let Ok(pkt) = TcpPacket::new_checked(&bytes[..]) else {
            return;
        };
        if !pkt.verify_checksum(src, dst) {
            return; // corrupted in flight
        }
        let repr = TcpRepr::parse(&pkt);
        let payload = pkt.payload().to_vec();
        let now = self.now;

        // Passive open on B.
        if self.ep(to).tcb.is_none() {
            if to == Side::B {
                if let Some(listener) = &self.listener_b {
                    if let Some((tcb, actions)) =
                        listener.on_syn((src, repr.src_port), &repr, 7000, now)
                    {
                        self.b.tcb = Some(tcb);
                        self.apply(Side::B, actions);
                    }
                }
            }
            return;
        }
        let tcb = self.ep_mut(to).tcb.as_mut().expect("checked above");
        let actions = tcb.on_segment(&repr, &payload, now);
        self.apply(to, actions);
    }

    /// Runs one event (earliest of in-flight delivery or timer). Returns
    /// false when nothing is pending.
    pub fn step(&mut self) -> bool {
        // Earliest flight delivery.
        let flight_next = self
            .flight
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| (f.deliver_at, f.seq))
            .map(|(i, f)| (f.deliver_at, i));
        // Earliest timer on either side.
        let timer_next = |ep: &Endpoint, side: Side| {
            ep.timers
                .iter()
                .copied()
                .min_by_key(|&(t, _)| t)
                .map(|(t, k)| (t, side, k))
        };
        let ta = timer_next(&self.a, Side::A);
        let tb = timer_next(&self.b, Side::B);
        let earliest_timer = [ta, tb].into_iter().flatten().min_by_key(|&(t, _, _)| t);

        let take_flight = match (flight_next, earliest_timer) {
            (None, None) => return false,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((ft, _)), Some((tt, _, _))) => ft <= tt,
        };
        if take_flight {
            let (ft, idx) = flight_next.expect("chosen above");
            let seg = self.flight.swap_remove(idx);
            self.now = self.now.max(ft);
            self.deliver(seg.to, seg.bytes);
        } else {
            let (tt, side, kind) = earliest_timer.expect("chosen above");
            self.now = self.now.max(tt);
            let ep = self.ep_mut(side);
            ep.timers.retain(|&(_, k)| k != kind);
            if let Some(tcb) = ep.tcb.as_mut() {
                let actions = tcb.on_timer(kind, tt);
                self.apply(side, actions);
            }
        }
        true
    }

    /// Runs until idle or `max_steps` events. Returns true if it idled.
    pub fn run(&mut self, max_steps: usize) -> bool {
        for _ in 0..max_steps {
            if !self.step() {
                return true;
            }
        }
        false
    }

    /// Runs until `pred` holds or `max_steps` events pass; true on success.
    pub fn run_until(&mut self, max_steps: usize, mut pred: impl FnMut(&Loopback) -> bool) -> bool {
        for _ in 0..max_steps {
            if pred(self) {
                return true;
            }
            if !self.step() {
                return pred(self);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_completes_on_clean_channel() {
        let mut lb = Loopback::new(
            TcpConfig::default(),
            TcpConfig::default(),
            ChannelModel::clean(),
        );
        assert!(lb.run_until(100, |lb| {
            lb.state(Side::A) == State::Established && lb.state(Side::B) == State::Established
        }));
        assert!(lb.events(Side::A).connected);
        assert!(lb.events(Side::B).connected);
    }

    #[test]
    fn small_transfer_both_directions() {
        let mut lb = Loopback::new(
            TcpConfig::default(),
            TcpConfig::default(),
            ChannelModel::clean(),
        );
        lb.run_until(100, |lb| lb.state(Side::A) == State::Established);
        lb.send(Side::A, b"hello from A");
        lb.send(Side::B, b"hi from B");
        assert!(
            lb.run_until(1000, |lb| lb.received(Side::B) == b"hello from A"
                && lb.received(Side::A) == b"hi from B")
        );
    }

    #[test]
    fn orderly_close_reaches_time_wait_and_closed() {
        let mut lb = Loopback::new(
            TcpConfig::default(),
            TcpConfig::default(),
            ChannelModel::clean(),
        );
        lb.run_until(100, |lb| lb.state(Side::A) == State::Established);
        lb.send(Side::A, b"bye");
        lb.close(Side::A);
        // B reads the data, sees EOF, closes too.
        assert!(lb.run_until(1000, |lb| lb.events(Side::B).peer_closed));
        lb.close(Side::B);
        // A entered TIME_WAIT; B should fully close on A's final ACK.
        assert!(lb.run_until(1000, |lb| lb.state(Side::B) == State::Closed
            && lb.state(Side::A) == State::TimeWait));
        // 2MSL later A closes too.
        assert!(lb.run_until(1000, |lb| lb.state(Side::A) == State::Closed));
        assert_eq!(lb.received(Side::B), b"bye");
    }
}
