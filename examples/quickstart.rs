//! Quickstart: two simulated workstations, the paper's user-level library
//! organization, one TCP connection, a greeting each way.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks through exactly what the paper's Figure 2 shows: the application
//! calls its linked protocol library; the library asks the registry server
//! for a connection; the registry runs the three-way handshake and installs
//! the demultiplexing binding + header template with the network I/O
//! module; then all data flows through the shared-memory channel with the
//! registry out of the loop.

use std::cell::RefCell;
use std::rc::Rc;

use unp::core::app::{AppLogic, AppOp, AppView};
use unp::core::world::{build_two_hosts, connect, listen, Network, OrgKind};
use unp::sim::fmt_nanos;
use unp::tcp::TcpConfig;
use unp::wire::Ipv4Addr;

/// The client: sends a greeting, prints the reply, closes.
struct Greeter {
    reply: Rc<RefCell<Vec<u8>>>,
}

impl AppLogic for Greeter {
    fn on_connected(&mut self, view: &AppView) -> Vec<AppOp> {
        println!(
            "[{}] client: connected, sending greeting",
            fmt_nanos(view.now)
        );
        vec![AppOp::Send(b"hello from the user-level library!".to_vec())]
    }

    fn on_data(&mut self, data: &[u8], view: &AppView) -> Vec<AppOp> {
        println!(
            "[{}] client: got reply: {:?}",
            fmt_nanos(view.now),
            String::from_utf8_lossy(data)
        );
        self.reply.borrow_mut().extend_from_slice(data);
        vec![AppOp::Close]
    }
}

/// The server: replies to whatever arrives, then closes after EOF.
struct Replier;

impl AppLogic for Replier {
    fn on_data(&mut self, data: &[u8], view: &AppView) -> Vec<AppOp> {
        println!(
            "[{}] server: got {:?}",
            fmt_nanos(view.now),
            String::from_utf8_lossy(data)
        );
        vec![AppOp::Send(b"hello back from the other library!".to_vec())]
    }

    fn on_peer_closed(&mut self, _view: &AppView) -> Vec<AppOp> {
        vec![AppOp::Close]
    }
}

fn main() {
    // Two DECstation-class hosts on a 10 Mb/s Ethernet.
    let (mut world, mut engine) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);

    listen(
        &mut world,
        1,
        23,
        TcpConfig::default(),
        Box::new(|| Box::new(Replier)),
    );

    let reply = Rc::new(RefCell::new(Vec::new()));
    connect(
        &mut world,
        &mut engine,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 23),
        TcpConfig::default(),
        Box::new(Greeter {
            reply: Rc::clone(&reply),
        }),
        64,
    );

    engine.run(&mut world, 1_000_000);

    println!();
    println!("-- world counters --");
    for (name, v) in world.metrics.counters() {
        println!("  {name:<28} {v}");
    }
    assert!(!reply.borrow().is_empty(), "should have received a reply");
    println!("\nconnection ran through the shared-memory channel; the");
    println!("registry served only the handshake (kernel-default deliveries:");
    println!(
        "  host0: {}, host1: {})",
        world.hosts[0].netio.default_deliveries, world.hosts[1].netio.default_deliveries
    );
}
