//! Packet capture — the Packet Filter's original job, done with this
//! repository's BPF VM: tap the simulated wire promiscuously, filter with
//! a generated program, and export a Wireshark-readable pcap file.
//!
//! ```text
//! cargo run --release --example packet_capture [out.pcap]
//! ```
//!
//! The simulated frames are bit-exact Ethernet II / IPv4 / TCP, so any
//! standard analyzer decodes the whole conversation — handshake, MSS
//! option, sliding window, FIN exchange — checksums and all.

use std::rc::Rc;

use unp::core::app::{BulkSender, SinkApp, TransferStats};
use unp::core::pcap::{write_pcap, LinkType};
use unp::core::world::{build_two_hosts, connect, listen, Network, OrgKind};
use unp::filter::programs::{bpf_demux, DemuxSpec};
use unp::tcp::TcpConfig;
use unp::wire::{IpProtocol, Ipv4Addr};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "unp-capture.pcap".to_string());
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);

    // Capture everything addressed to the server's port 80 — the same
    // generated BPF program the kernel's demultiplexer would use.
    let spec = DemuxSpec {
        link_header_len: 14,
        protocol: IpProtocol::Tcp,
        local_ip: Ipv4Addr::new(10, 0, 0, 2),
        local_port: 80,
        remote_ip: None,
        remote_port: None,
    };
    let to_server = w.add_capture_tap("to-server", bpf_demux(&spec));
    // And the reverse direction (anything TCP from the server's address).
    let rev = DemuxSpec {
        link_header_len: 14,
        protocol: IpProtocol::Tcp,
        local_ip: Ipv4Addr::new(10, 0, 0, 1),
        local_port: 0, // unknown ephemeral; wildcard below
        remote_ip: None,
        remote_port: None,
    };
    // A wildcard-port program: reuse the spec builder with port learned
    // after the run is overkill for an example; capture both directions by
    // running the transfer first, then merging the to-server capture with
    // a second pass. For simplicity, capture only to-server here.
    let _ = rev;

    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    listen(
        &mut w,
        1,
        80,
        TcpConfig::default(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        TcpConfig::default(),
        Box::new(BulkSender::new(50_000, 4096)),
        4096,
    );
    engine_run(&mut w, &mut eng);

    let frames = w.tap_frames(to_server).to_vec();
    write_pcap(&out, &frames, LinkType::Ethernet).expect("write pcap");
    println!(
        "captured {} frames ({} bytes on the wire) of the to-server flow",
        frames.len(),
        frames.iter().map(|(_, f)| f.len()).sum::<usize>()
    );
    println!("transfer delivered {} bytes", stats.borrow().bytes_received);
    println!("wrote {out} — open it in Wireshark/tcpdump:");
    println!("  tcpdump -r {out} | head");
    assert!(frames.len() > 30, "expected a full conversation");
}

fn engine_run(w: &mut unp::core::World, eng: &mut unp::core::Eng) {
    eng.run(w, 10_000_000);
}
