//! Bulk file transfer across every protocol organization and both
//! networks — the paper's Table 2 workload as a runnable application.
//!
//! ```text
//! cargo run --release --example file_transfer [bytes]
//! ```

use unp::core::experiments::throughput_mbps;
use unp::core::world::{Network, OrgKind};

fn main() {
    let bytes: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    println!("Transferring {bytes} bytes (4 kB application writes)\n");
    println!(
        "{:<32} {:>16} {:>16}",
        "Organization", "Ethernet (Mb/s)", "AN1 (Mb/s)"
    );
    for org in [
        OrgKind::InKernel,
        OrgKind::SingleServer,
        OrgKind::SingleServerMsg,
        OrgKind::DedicatedServer,
        OrgKind::UserLibrary,
    ] {
        let eth = throughput_mbps(Network::Ethernet, org, 4096, bytes);
        let an1 = throughput_mbps(Network::An1, org, 4096, bytes);
        println!("{:<32} {:>16.2} {:>16.2}", org.label(), eth, an1);
    }
    println!();
    println!("Expected shape (paper §4): the user-level library beats the");
    println!("single-server organizations decisively, trails the in-kernel");
    println!("stack modestly on Ethernet, and reaches parity on AN1 where");
    println!("hardware BQI demultiplexing removes the software demux and");
    println!("copy costs.");
}
