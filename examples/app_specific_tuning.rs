//! Application-specific protocol specialization — the paper's §5 future
//! work: "simple approaches include providing a set of canned options that
//! determine certain characteristics of a protocol."
//!
//! ```text
//! cargo run --release --example app_specific_tuning
//! ```
//!
//! Because the protocol is a *library in the application's address space*,
//! each application can link a variant tuned to its traffic — something
//! monolithic stacks can only offer through global knobs. This example
//! measures three canned variants of the TCP library on two workloads.

use std::cell::RefCell;
use std::rc::Rc;

use unp::core::app::{
    AppLogic, AppOp, AppView, BulkSender, EchoApp, PingPongApp, SinkApp, TransferStats,
};
use unp::core::world::{build_two_hosts, connect, listen, Network, OrgKind};
use unp::tcp::TcpConfig;
use unp::wire::Ipv4Addr;

const SERVER: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 2), 80);

fn bulk_run(cfg: TcpConfig) -> f64 {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    listen(
        &mut w,
        1,
        80,
        cfg.clone(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        SERVER,
        cfg,
        Box::new(BulkSender::new(500_000, 4096)),
        4096,
    );
    eng.run(&mut w, 50_000_000);
    let tput = stats.borrow().throughput_bps().unwrap_or(0.0) / 1e6;
    tput
}

fn latency_run(cfg: TcpConfig) -> f64 {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    listen(&mut w, 1, 80, cfg.clone(), Box::new(|| Box::new(EchoApp)));
    connect(
        &mut w,
        &mut eng,
        0,
        SERVER,
        cfg,
        Box::new(PingPongApp::new(64, 20, Rc::clone(&stats))),
        64,
    );
    eng.run(&mut w, 50_000_000);
    let rtt = stats.borrow().mean_rtt().unwrap_or(f64::NAN) / 1e6;
    rtt
}

/// An RPC client that sends each request as TWO writes (header, then
/// body) — the write-write-read pattern where Nagle's algorithm and the
/// peer's delayed ACK interact catastrophically: the second write is held
/// until the first is acknowledged, and the acknowledgment is delayed.
struct ChattyClient {
    rounds: usize,
    got: usize,
    sent_at: u64,
    rtts: Rc<RefCell<Vec<u64>>>,
}

impl ChattyClient {
    fn request(&mut self, now: u64) -> Vec<AppOp> {
        self.sent_at = now;
        self.got = 0;
        vec![
            AppOp::Send(b"HDR[16------->]:".to_vec()),
            AppOp::Send(b"body(16 bytes)..".to_vec()),
        ]
    }
}

impl AppLogic for ChattyClient {
    fn on_connected(&mut self, view: &AppView) -> Vec<AppOp> {
        self.request(view.now)
    }

    fn on_data(&mut self, data: &[u8], view: &AppView) -> Vec<AppOp> {
        self.got += data.len();
        if self.got < 32 {
            return Vec::new();
        }
        self.rtts.borrow_mut().push(view.now - self.sent_at);
        self.rounds -= 1;
        if self.rounds == 0 {
            vec![AppOp::Close]
        } else {
            self.request(view.now)
        }
    }
}

/// Echoes only once a full 32-byte request has arrived (a real RPC server
/// cannot answer a half-received request).
#[derive(Default)]
struct RpcServer {
    buffered: Vec<u8>,
}

impl AppLogic for RpcServer {
    fn on_data(&mut self, data: &[u8], _view: &AppView) -> Vec<AppOp> {
        self.buffered.extend_from_slice(data);
        if self.buffered.len() >= 32 {
            let reply: Vec<u8> = self.buffered.drain(..32).collect();
            vec![AppOp::Send(reply)]
        } else {
            Vec::new()
        }
    }

    fn on_peer_closed(&mut self, _view: &AppView) -> Vec<AppOp> {
        vec![AppOp::Close]
    }
}

fn chatty_rpc_run(cfg: TcpConfig) -> f64 {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let rtts = Rc::new(RefCell::new(Vec::new()));
    listen(
        &mut w,
        1,
        80,
        cfg.clone(),
        Box::new(|| Box::<RpcServer>::default()),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        SERVER,
        cfg,
        Box::new(ChattyClient {
            rounds: 10,
            got: 0,
            sent_at: 0,
            rtts: Rc::clone(&rtts),
        }),
        16,
    );
    eng.run(&mut w, 50_000_000);
    let r = rtts.borrow();
    if r.is_empty() {
        return f64::NAN;
    }
    let mean = r.iter().map(|&v| v as f64).sum::<f64>() / r.len() as f64 / 1e6;
    mean
}

fn main() {
    let variants: [(&str, TcpConfig); 3] = [
        ("default", TcpConfig::default()),
        ("bulk_transfer (64 kB buffers)", TcpConfig::bulk_transfer()),
        ("low_latency (no Nagle/delack)", TcpConfig::low_latency()),
    ];
    println!(
        "{:<34} {:>13} {:>15} {:>18}",
        "Library variant", "Bulk (Mb/s)", "64 B RTT (ms)", "2-write RPC (ms)"
    );
    for (name, cfg) in variants {
        let tput = bulk_run(cfg.clone());
        let rtt = latency_run(cfg.clone());
        let rpc = chatty_rpc_run(cfg);
        println!("{:<34} {:>13.2} {:>15.2} {:>18.2}", name, tput, rtt, rpc);
    }
    println!();
    println!("Each variant is the same library code with different canned");
    println!("options — per-application, because the protocol lives in the");
    println!("application's address space. A monolithic kernel stack would");
    println!("apply one setting to every process on the machine.");
}
