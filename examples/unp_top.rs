//! `top` for the user-level stack — windowed telemetry plus a post-run
//! critical-path latency profile.
//!
//! ```text
//! cargo run --release --example unp_top
//! cargo run --release --example unp_top -- --redraw   # ANSI live redraw
//! ```
//!
//! Three concurrent bulk transfers run through the user-level library
//! organization over a mildly lossy link. The simulation is stepped in
//! 100 ms slices; each slice takes a [`Snapshot`] of the metrics
//! registry and prints the *rates over the window* — packets per
//! second, retransmit rate, flow-table hit rate, ring occupancy — the
//! way `top` shows deltas rather than lifetime totals. When the
//! transfers retire, the recorded packet journal is joined into
//! per-frame path traces and the end-to-end latency decomposition is
//! printed per stage, followed by folded flamegraph lines.

use std::rc::Rc;

use unp::buffers::OwnerTag;
use unp::core::app::{BulkSender, SinkApp, TransferStats};
use unp::core::faults::FaultPlan;
use unp::core::world::{
    build_two_hosts, connect, install_faults, listen_as, sync_monitor_stats, sync_tenant_scopes,
    Network, OrgKind,
};
use unp::kernel::TenantBudget;
use unp::sim::fmt_nanos;
use unp::tcp::TcpConfig;
use unp::trace::{Ctr, Gauge, Hist, Monitor, PathOutcome, Profile, Stage};
use unp::wire::Ipv4Addr;

fn main() {
    let redraw = std::env::args().any(|a| a == "--redraw");

    let (mut world, mut engine) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let host1_addr = Ipv4Addr::new(10, 0, 0, 2);

    // Record the journal from the very first SYN so the profiler sees
    // every frame's full path. (With the `trace` feature off this is a
    // no-op and the profile section below reports an empty journal.)
    unp::trace::journal_start();

    // Conformance monitor with a bounded flight recorder rides the same
    // observer pipeline: the `viol`/`rec` columns below come from its
    // stream counters, mirrored into the metrics each slice.
    unp::trace::reset_stream_stats();
    let monitor = unp::trace::attach(Box::new(Monitor::with_recorder(256)));

    let transfers = [
        (80u16, 400_000u64, 4096usize),
        (81, 200_000, 1024),
        (82, 100_000, 512),
    ];
    let mut stats = Vec::new();
    for &(port, total, user_packet) in &transfers {
        let st = TransferStats::new_shared();
        let st2 = Rc::clone(&st);
        // One server-side tenant per listener, so the per-tenant columns
        // below show three distinct budgeted rows.
        listen_as(
            &mut world,
            1,
            OwnerTag(u64::from(port) - 79),
            port,
            TcpConfig::bulk_transfer(),
            Box::new(move || Box::new(SinkApp::new(Rc::clone(&st2)))),
        );
        connect(
            &mut world,
            &mut engine,
            0,
            (host1_addr, port),
            TcpConfig::bulk_transfer(),
            Box::new(BulkSender::new(total, user_packet)),
            user_packet,
        );
        stats.push((port, total, st));
    }

    // 1% seeded loss (with half-rate duplication, corruption and
    // reordering) so the retransmit columns have something to show.
    install_faults(&mut world, &mut engine, FaultPlan::lossy(7, 0.01));

    // Ring-slot budgets for the server-side tenants, so the quota-drop
    // and ring-share columns are live.
    for (tenant, ring_slots) in [(1u64, 256usize), (2, 64), (3, 40)] {
        world.hosts[1].netio.set_tenant_budget(
            OwnerTag(tenant),
            TenantBudget {
                ring_slots,
                tx_credit: 0,
                max_channels: 0,
            },
        );
    }

    let header = format!(
        "{:<9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>8} {:>9} {:>5} {:>5} {:>7}",
        "sim time",
        "rx pps",
        "tx pps",
        "rexmit/s",
        "rex %",
        "flow %",
        "keyed %",
        "tbl f/l",
        "ring avg",
        "batch avg",
        "conns",
        "viol",
        "rec occ"
    );
    if !redraw {
        println!("{header}");
    }

    let slice = 100_000_000; // 100 ms of simulated time per window
    let mut deadline = slice;
    let mut prev = world.metrics.snapshot(engine.now());
    let mut prev_qdrops: std::collections::BTreeMap<(u16, u64), u64> = Default::default();
    let mut rows: Vec<String> = Vec::new();
    loop {
        engine.run_until(&mut world, deadline);
        sync_monitor_stats(&mut world);
        let snap = world.metrics.snapshot(engine.now());
        let w = snap.window_since(&prev);
        let (flow_tbl, listen_tbl) = w.demux_table_sizes();
        let mut row = format!(
            "{:<9} {:>9.0} {:>9.0} {:>9.1} {:>7} {:>7} {:>7} {:>7} {:>8} {:>9} {:>5} {:>5} {:>7}",
            fmt_nanos(snap.time),
            w.rx_pps(),
            w.tx_pps(),
            w.rexmit_per_sec(),
            w.rexmit_share()
                .map_or("-".into(), |r| format!("{:.1}", r * 100.0)),
            w.flow_hit_rate()
                .map_or("-".into(), |r| format!("{:.1}", r * 100.0)),
            w.keyed_hit_rate()
                .map_or("-".into(), |r| format!("{:.1}", r * 100.0)),
            format!("{flow_tbl}/{listen_tbl}"),
            w.mean_ring_depth()
                .map_or("-".into(), |d| format!("{d:.2}")),
            w.hist_mean(Hist::WakeupBatchFrames)
                .map_or("-".into(), |b| format!("{b:.2}")),
            snap.gauge(Gauge::ActiveConnections),
            snap.get(Ctr::MonitorViolations),
            snap.gauge(Gauge::RecorderOccupancy),
        );
        // Per-tenant sub-line: windowed quota-drop rate and current
        // share of each budgeted tenant's ring quota.
        sync_tenant_scopes(&mut world);
        let secs = slice as f64 / 1e9;
        let mut cells = Vec::new();
        for (&(host, tenant), t) in world.metrics.tenants() {
            let before = prev_qdrops
                .insert((host, tenant), t.quota_drops)
                .unwrap_or(0);
            cells.push(format!(
                "h{host}t{tenant} {:>5.1} qd/s ring {:>4}",
                (t.quota_drops - before) as f64 / secs,
                t.ring_share()
                    .map_or("-".into(), |r| format!("{:.0}%", r * 100.0)),
            ));
        }
        if !cells.is_empty() {
            row.push_str(&format!("\n{:<9} {}", "  tenants", cells.join("  ")));
        }
        if redraw {
            // Home the cursor and repaint the whole table each slice, the
            // way `top` does; the scrollback stays clean.
            rows.push(row);
            print!("\x1b[2J\x1b[H{header}\n{}\n", rows.join("\n"));
        } else {
            println!("{row}");
        }
        prev = snap;
        let done = stats
            .iter()
            .all(|(_, total, st)| st.borrow().bytes_received == *total);
        if done || deadline > 300_000_000_000 {
            break;
        }
        deadline += slice;
    }
    // Drain the close handshakes and 2MSL timers so the journal ends on
    // a quiet wire and every in-flight frame reaches an outcome.
    engine.run(&mut world, u64::MAX);
    println!();

    for (port, total, st) in &stats {
        let s = st.borrow();
        println!(
            "transfer :{port}  {} / {} bytes, {:.2} Mb/s",
            s.bytes_received,
            total,
            s.throughput_bps().unwrap_or(0.0) / 1e6
        );
        assert_eq!(s.bytes_received, *total, "transfer on :{port} incomplete");
    }
    println!();

    sync_tenant_scopes(&mut world);
    println!("-- per-tenant stats --");
    for (&(host, tenant), t) in world.metrics.tenants() {
        println!(
            "h{host} t{tenant}: rx {:>5}  tx {:>5}  quota drops {:>4}  tx rejections {:>4}  ring {}/{}",
            t.rx_delivered,
            t.tx_frames,
            t.quota_drops,
            t.tx_rejections,
            t.ring_slots,
            if t.ring_quota == 0 { "inf".into() } else { t.ring_quota.to_string() },
        );
    }
    println!();

    // Pull the monitor back off the pipeline and report what it checked.
    // A conformant run ends at zero violations; anything else prints its
    // typed line so the postmortem has a starting point.
    sync_monitor_stats(&mut world);
    let mon = unp::trace::detach_as::<Monitor>(monitor).expect("monitor still attached");
    let c = mon.checked();
    println!("-- conformance monitor --");
    println!(
        "violations {} (metrics mirror {})  recorder {} records held",
        mon.total_violations(),
        world.metrics.get(Ctr::MonitorViolations),
        mon.recorder_occupancy(),
    );
    println!(
        "checked: {} acks, {} transitions, {} rexmits, {} ring, {} pool, {} classify, {} quota",
        c.tcp_acks,
        c.transitions,
        c.rexmits,
        c.ring_events,
        c.pool_events,
        c.demux_classifies,
        c.quota_drops,
    );
    for v in mon.violations().iter().take(5) {
        println!("  {}", v.line());
    }
    println!();

    // Join the journal into per-frame path traces and decompose the
    // delivered frames' end-to-end latency by pipeline stage.
    let records = unp::trace::journal_stop();
    if records.is_empty() {
        println!("(journal empty — build with the default `trace` feature for the profile)");
        return;
    }
    let profile = Profile::build(&records);
    profile
        .check_consistency()
        .expect("profiler invariants hold");

    println!(
        "-- path outcomes ({} frames traced) --",
        profile.traces.len()
    );
    for o in PathOutcome::ALL {
        let n = profile.outcome_count(o);
        if n > 0 {
            println!("  {:<17} {n:>7}", o.label());
        }
    }
    println!();

    println!(
        "-- receive-path latency decomposition ({} delivered frames) --",
        profile.delivered()
    );
    println!(
        "{:<15} {:>7} {:>12} {:>12} {:>12} {:>7}",
        "stage", "frames", "mean", "p50", "p99", "share"
    );
    let total_ns: u128 = profile.stages.iter().map(|h| h.sum()).sum();
    for (i, stage) in Stage::ALL.iter().enumerate() {
        let h = &profile.stages[i];
        if h.count() == 0 {
            continue;
        }
        println!(
            "{:<15} {:>7} {:>12} {:>12} {:>12} {:>6.1}%",
            stage.label(),
            h.count(),
            h.mean().map_or("-".into(), |m| fmt_nanos(m as u64)),
            h.quantile(0.5).map_or("-".into(), fmt_nanos),
            h.quantile(0.99).map_or("-".into(), fmt_nanos),
            100.0 * h.sum() as f64 / total_ns.max(1) as f64,
        );
    }
    println!(
        "{:<15} {:>7} {:>12} {:>12} {:>12}",
        "end-to-end",
        profile.end_to_end.count(),
        profile
            .end_to_end
            .mean()
            .map_or("-".into(), |m| fmt_nanos(m as u64)),
        profile
            .end_to_end
            .quantile(0.5)
            .map_or("-".into(), fmt_nanos),
        profile
            .end_to_end
            .quantile(0.99)
            .map_or("-".into(), fmt_nanos),
    );
    println!();

    println!("-- folded stacks (flamegraph input) --");
    print!("{}", profile.folded());
}
