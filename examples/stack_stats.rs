//! Live stack statistics — the typed metrics registry at work.
//!
//! ```text
//! cargo run --release --example stack_stats
//! ```
//!
//! Three concurrent bulk transfers run through the user-level library
//! organization while the simulation is stepped in 250 ms slices; each
//! slice takes a [`Snapshot`] of the registry and prints the *rates
//! over the window* — delivery and retransmit rates, and the demux
//! fast-path hit rates (flow-table, keyed 4-tuple, 3-tuple listen) —
//! rather than lifetime totals. When the connections retire, their
//! per-connection and per-channel scopes are filled in, and the
//! registry's channel-stats handoff reports any binding that kept
//! missing the fast path. A mildly lossy seeded [`FaultPlan`] runs
//! underneath, so the fault-injection counters and per-link fault
//! scopes have something to show.

use std::rc::Rc;

use unp::buffers::OwnerTag;
use unp::core::app::{BulkSender, SinkApp, TransferStats};
use unp::core::faults::FaultPlan;
use unp::core::world::{
    build_two_hosts, connect, install_faults, listen_as, sync_monitor_stats, sync_tenant_scopes,
    Network, OrgKind,
};
use unp::kernel::TenantBudget;
use unp::sim::fmt_nanos;
use unp::tcp::TcpConfig;
use unp::trace::{Ctr, Gauge, Hist, Monitor};
use unp::wire::Ipv4Addr;

fn main() {
    let (mut world, mut engine) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let host1_addr = Ipv4Addr::new(10, 0, 0, 2);

    // Streaming conformance monitor with a bounded flight recorder: the
    // `viol`/`rec` columns below mirror its stream counters into the
    // metrics registry each slice.
    unp::trace::reset_stream_stats();
    let monitor = unp::trace::attach(Box::new(Monitor::with_recorder(256)));

    // Three transfers of different sizes and write granularities, all
    // running at once on the same link.
    let transfers = [
        (80u16, 400_000u64, 4096usize),
        (81, 200_000, 1024),
        (82, 100_000, 512),
    ];
    let mut stats = Vec::new();
    for &(port, total, user_packet) in &transfers {
        let st = TransferStats::new_shared();
        let st2 = Rc::clone(&st);
        // Each server listener runs as its own tenant (1..=3), so the
        // per-tenant quota/ring columns below have distinct rows.
        listen_as(
            &mut world,
            1,
            OwnerTag(u64::from(port) - 79),
            port,
            TcpConfig::bulk_transfer(),
            Box::new(move || Box::new(SinkApp::new(Rc::clone(&st2)))),
        );
        connect(
            &mut world,
            &mut engine,
            0,
            (host1_addr, port),
            TcpConfig::bulk_transfer(),
            Box::new(BulkSender::new(total, user_packet)),
            user_packet,
        );
        stats.push((port, total, st));
    }

    // A gentle seeded impairment: 1% loss with half-rate duplication,
    // corruption, and reordering. TCP absorbs all of it; the counters
    // below show what was injected and recovered from.
    install_faults(&mut world, &mut engine, FaultPlan::lossy(7, 0.01));

    // Budget the server-side tenants so the ring-share column is live:
    // generous for the big transfer, tight for the small one (whose
    // occupancy spikes may actually hit the quota).
    for (tenant, ring_slots) in [(1u64, 256usize), (2, 64), (3, 40)] {
        world.hosts[1].netio.set_tenant_budget(
            OwnerTag(tenant),
            TenantBudget {
                ring_slots,
                tx_credit: 0,
                max_channels: 0,
            },
        );
    }

    // Step the world in slices, printing the deltas of each window:
    // packet and retransmit rates plus the three demux fast-path hit
    // rates (per-channel flow table, keyed 4-tuple map, 3-tuple listen
    // table).
    let pct = |r: Option<f64>| r.map_or("-".into(), |r| format!("{:.1}", r * 100.0));
    println!(
        "{:<10} {:>5} {:>5} {:>9} {:>9} {:>9} {:>7} {:>7} {:>8} {:>9} {:>5} {:>7}",
        "sim time",
        "conns",
        "chans",
        "rx pps",
        "tx pps",
        "rexmit/s",
        "flow %",
        "keyed %",
        "listen %",
        "avg batch",
        "viol",
        "rec occ"
    );
    let slice = 250_000_000; // 250 ms of simulated time
    let mut deadline = slice;
    let mut prev = world.metrics.snapshot(engine.now());
    let mut prev_qdrops: std::collections::BTreeMap<(u16, u64), u64> = Default::default();
    loop {
        engine.run_until(&mut world, deadline);
        sync_monitor_stats(&mut world);
        let snap = world.metrics.snapshot(engine.now());
        let w = snap.window_since(&prev);
        println!(
            "{:<10} {:>5} {:>5} {:>9.0} {:>9.0} {:>9.1} {:>7} {:>7} {:>8} {:>9} {:>5} {:>7}",
            fmt_nanos(snap.time),
            snap.gauge(Gauge::ActiveConnections),
            snap.gauge(Gauge::OpenChannels),
            w.rx_pps(),
            w.tx_pps(),
            w.rexmit_per_sec(),
            pct(w.flow_hit_rate()),
            pct(w.keyed_hit_rate()),
            pct(w.listen_hit_rate()),
            w.hist_mean(Hist::WakeupBatchFrames)
                .map_or("-".into(), |b| format!("{b:.2}")),
            snap.get(Ctr::MonitorViolations),
            snap.gauge(Gauge::RecorderOccupancy),
        );
        // Per-tenant sub-line: quota-drop rate over the window and the
        // tenant's current share of its own ring quota.
        sync_tenant_scopes(&mut world);
        let secs = slice as f64 / 1e9;
        let mut cells = Vec::new();
        for (&(host, tenant), t) in world.metrics.tenants() {
            let before = prev_qdrops
                .insert((host, tenant), t.quota_drops)
                .unwrap_or(0);
            cells.push(format!(
                "h{host}t{tenant} {:>5.1} qd/s ring {:>4}",
                (t.quota_drops - before) as f64 / secs,
                t.ring_share()
                    .map_or("-".into(), |r| format!("{:.0}%", r * 100.0)),
            ));
        }
        if !cells.is_empty() {
            println!("{:<10} {}", "  tenants", cells.join("  "));
        }
        prev = snap;
        let done = stats
            .iter()
            .all(|(_, total, st)| st.borrow().bytes_received == *total);
        if done || deadline > 300_000_000_000 {
            break;
        }
        deadline += slice;
    }
    // Let the close handshakes and 2MSL timers drain so every connection
    // retires and its metrics scope is filled in.
    engine.run(&mut world, u64::MAX);
    println!();

    for (port, total, st) in &stats {
        let s = st.borrow();
        println!(
            "transfer :{port}  {} / {} bytes, {:.2} Mb/s",
            s.bytes_received,
            total,
            s.throughput_bps().unwrap_or(0.0) / 1e6
        );
        assert_eq!(s.bytes_received, *total, "transfer on :{port} incomplete");
    }
    println!();

    // Retired connections: the per-connection scopes.
    println!("-- per-connection stats (filled at retirement) --");
    println!(
        "{:<22} {:>8} {:>8} {:>9} {:>7} {:>9} {:>9} {:>10}",
        "conn", "segs_out", "segs_in", "to_app", "rexmit", "flow_hit", "scan_fb", "srtt"
    );
    let mut conns: Vec<_> = world.metrics.conns().collect();
    conns.sort_by_key(|(k, _)| (k.host, k.local_port, k.remote_port));
    for (k, c) in conns {
        let ip = k.remote_ip;
        println!(
            "{:<22} {:>8} {:>8} {:>9} {:>7} {:>9} {:>9} {:>10}",
            format!(
                "h{}:{} <-> {}.{}.{}.{}:{}",
                k.host, k.local_port, ip[0], ip[1], ip[2], ip[3], k.remote_port
            ),
            c.segs_out,
            c.segs_in,
            c.bytes_to_app,
            c.bytes_rexmit,
            c.flow_hits,
            c.scan_fallbacks,
            c.srtt.map_or("-".into(), fmt_nanos),
        );
    }
    println!();

    // The kernel's per-channel counters, keyed (host, channel id).
    println!("-- per-channel stats --");
    let mut chans: Vec<_> = world.metrics.channels().collect();
    chans.sort_by_key(|(k, _)| **k);
    for ((host, id), ch) in chans {
        println!(
            "h{host} chan {id:<3} delivered {:>6}  batched {:>6}  flow hits {:>6}  scan fallbacks {:>4}",
            ch.delivered, ch.batched, ch.flow_hits, ch.scan_fallbacks
        );
    }
    println!();

    // Per-tenant accounting: what each tenant received, sent, and had
    // charged against its quotas.
    sync_tenant_scopes(&mut world);
    println!("-- per-tenant stats --");
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>7} {:>9} {:>6}",
        "tenant", "rx_frames", "tx_frames", "qdrops", "tx_rej", "ring", "chans"
    );
    for (&(host, tenant), t) in world.metrics.tenants() {
        println!(
            "h{host} t{tenant:<6} {:>9} {:>9} {:>7} {:>7} {:>9} {:>6}",
            t.rx_delivered,
            t.tx_frames,
            t.quota_drops,
            t.tx_rejections,
            format!(
                "{}/{}",
                t.ring_slots,
                if t.ring_quota == 0 {
                    "inf".into()
                } else {
                    t.ring_quota.to_string()
                }
            ),
            t.open_channels,
        );
    }
    println!();

    // The conformance monitor's verdict over the whole run: what each
    // streaming checker examined, and zero violations on this conformant
    // workload (faults and all — loss is legal, protocol lies are not).
    sync_monitor_stats(&mut world);
    let mon = unp::trace::detach_as::<Monitor>(monitor).expect("monitor still attached");
    let c = mon.checked();
    println!("-- conformance monitor --");
    println!(
        "violations {} (metrics mirror {})  recorder {} records held",
        mon.total_violations(),
        world.metrics.get(Ctr::MonitorViolations),
        mon.recorder_occupancy(),
    );
    println!(
        "checked: {} acks, {} transitions, {} rexmits, {} ring, {} pool, {} classify, {} quota",
        c.tcp_acks,
        c.transitions,
        c.rexmits,
        c.ring_events,
        c.pool_events,
        c.demux_classifies,
        c.quota_drops,
    );
    for v in mon.violations().iter().take(5) {
        println!("  {}", v.line());
    }
    println!();

    // Fault injection: what the plan did to the wire, and what the stack
    // noticed (a corrupted frame only counts as discarded once a
    // checksum actually catches it).
    println!("-- fault injection --");
    println!(
        "injected: {} dropped, {} duplicated, {} reordered, {} corrupted, {} outage-dropped",
        world.metrics.get(Ctr::FaultDrops),
        world.metrics.get(Ctr::FaultDups),
        world.metrics.get(Ctr::FaultReorders),
        world.metrics.get(Ctr::FaultCorrupts),
        world.metrics.get(Ctr::FaultOutageDrops),
    );
    let rexmit: u64 = world.metrics.conns().map(|(_, c)| c.bytes_rexmit).sum();
    println!(
        "recovered: {} corrupt frames discarded by checksum, {} bytes retransmitted",
        world.metrics.get(Ctr::FrameCorruptDiscards),
        rexmit,
    );
    for ((from, to), l) in world.metrics.links() {
        println!(
            "link h{from}->h{to}: drops {} dups {} reorders {} corrupts {} outage {}",
            l.drops, l.dups, l.reorders, l.corrupts, l.outage_drops
        );
    }
    println!();

    // The registry handoff: bindings whose deliveries kept missing the
    // flow-table fast path would be listed here.
    for h in [0usize, 1] {
        let reg = &world.hosts[h].registry;
        println!(
            "h{h} registry: {} binding reports, {} flagged as missing the fast path",
            reg.binding_reports().len(),
            reg.flagged_bindings().len()
        );
        for b in reg.flagged_bindings() {
            println!(
                "  :{} <-> {:?}:{}  scan fallbacks {} > flow hits {}",
                b.local_port, b.remote.0, b.remote.1, b.stats.scan_fallbacks, b.stats.flow_hits
            );
        }
    }
}
