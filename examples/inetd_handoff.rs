//! Connection hand-off — the paper's `inetd` scenario: "once a connection
//! is established, it can be passed by the application to other
//! applications without involving the registry server or the network I/O
//! module. The port abstractions provided by the Mach kernel are
//! sufficient for this. A typical instance of this occurs in UNIX-based
//! systems where the Internet daemon (inetd) hands off connection
//! end-points to specific servers such as the TELNET or FTP daemons."
//!
//! ```text
//! cargo run --example inetd_handoff
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use unp::buffers::OwnerTag;
use unp::core::app::{AppLogic, AppOp, AppView};
use unp::core::world::{build_two_hosts, connect, listen, poke_conn, Network, OrgKind};
use unp::kernel::PortSpace;
use unp::tcp::TcpConfig;
use unp::wire::Ipv4Addr;

const INETD: OwnerTag = OwnerTag(100);
const TELNETD: OwnerTag = OwnerTag(101);

/// The "inetd" side: accepts, reads the service request, then (in main)
/// the connection is handed to the telnet daemon's logic.
#[derive(Default)]
struct Inetd {
    requested: Rc<RefCell<Option<String>>>,
}

impl AppLogic for Inetd {
    fn on_data(&mut self, data: &[u8], _view: &AppView) -> Vec<AppOp> {
        *self.requested.borrow_mut() = Some(String::from_utf8_lossy(data).into_owned());
        Vec::new() // inetd itself never answers; the daemon will
    }
}

/// The "telnetd" that inherits the live connection: it greets the client
/// on takeover (triggered by a poke), then serves requests.
#[derive(Default)]
struct Telnetd {
    greeted: bool,
}

impl AppLogic for Telnetd {
    fn on_send_space(&mut self, _view: &AppView) -> Vec<AppOp> {
        if self.greeted {
            Vec::new()
        } else {
            self.greeted = true;
            vec![AppOp::Send(b"telnetd ready".to_vec())]
        }
    }

    fn on_data(&mut self, data: &[u8], _view: &AppView) -> Vec<AppOp> {
        let mut reply = b"telnetd> ".to_vec();
        reply.extend_from_slice(data);
        vec![AppOp::Send(reply)]
    }

    fn on_peer_closed(&mut self, _view: &AppView) -> Vec<AppOp> {
        vec![AppOp::Close]
    }
}

/// The client: asks for telnet, then talks to whoever answers.
struct Client {
    log: Rc<RefCell<Vec<String>>>,
    sent_second: bool,
}

impl AppLogic for Client {
    fn on_connected(&mut self, _view: &AppView) -> Vec<AppOp> {
        vec![AppOp::Send(b"SERVICE telnet".to_vec())]
    }

    fn on_data(&mut self, data: &[u8], _view: &AppView) -> Vec<AppOp> {
        self.log
            .borrow_mut()
            .push(String::from_utf8_lossy(data).into_owned());
        if !self.sent_second {
            self.sent_second = true;
            vec![AppOp::Send(b"ls /".to_vec())]
        } else {
            vec![AppOp::Close]
        }
    }
}

fn main() {
    let (mut world, mut engine) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let requested = Rc::new(RefCell::new(None));
    let req = Rc::clone(&requested);
    listen(
        &mut world,
        1,
        23,
        TcpConfig::default(),
        Box::new(move || {
            Box::new(Inetd {
                requested: Rc::clone(&req),
            })
        }),
    );
    let log = Rc::new(RefCell::new(Vec::new()));
    connect(
        &mut world,
        &mut engine,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 23),
        TcpConfig::default(),
        Box::new(Client {
            log: Rc::clone(&log),
            sent_second: false,
        }),
        64,
    );

    // Run until inetd has read the service request.
    for _ in 0..1_000_000 {
        if requested.borrow().is_some() || !engine.step(&mut world) {
            break;
        }
    }
    println!("inetd received: {:?}", requested.borrow().clone().unwrap());

    // --- The hand-off. The kernel's port space transfers the receive
    // right for the connection from inetd to telnetd; no registry or
    // network I/O module involvement, exactly as in the paper. ---
    let mut ports: PortSpace<&str> = PortSpace::new();
    let conn_port = ports.allocate(INETD, "connection #1 (caps + shared region)");
    ports
        .transfer(conn_port, INETD, TELNETD)
        .expect("inetd holds the right");
    assert_eq!(ports.holder(conn_port), Some(TELNETD));
    println!("port right transferred: inetd -> telnetd (kernel port space)");

    // Swap the application logic on the live connection — the in-process
    // equivalent of the new daemon picking up the inherited socket.
    let conn_id = *world.hosts[1]
        .conns
        .keys()
        .next()
        .expect("connection is live");
    world.hosts[1].conns.get_mut(&conn_id).expect("live").app = Box::<Telnetd>::default();
    // The daemon announces itself over the inherited connection.
    poke_conn(&mut world, &mut engine, 1, conn_id);
    println!("telnetd now owns the established connection\n");

    engine.run(&mut world, 1_000_000);

    for line in log.borrow().iter() {
        println!("client saw: {line:?}");
    }
    assert!(
        log.borrow().iter().any(|l| l.starts_with("telnetd> ")),
        "telnetd should have answered over the inherited connection"
    );
    // inetd can no longer read the connection's port.
    assert!(ports.get(conn_port, INETD).is_err());
}
