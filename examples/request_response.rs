//! Request/response latency: the paper's Table 3 ping-pong as a runnable
//! application, plus the `rrp` transaction protocol the paper's motivation
//! section argues should *coexist* with TCP.
//!
//! ```text
//! cargo run --release --example request_response
//! ```
//!
//! Demonstrates the latency-vs-throughput trade: the single-outstanding-
//! transaction `rrp` wins small-message latency (no handshake, reply
//! acknowledges request) while TCP wins bulk throughput (windowed stream).

use unp::core::experiments::latency_ms;
use unp::core::rrp::{RrpClient, RrpClientAction, RrpServer, RrpServerAction};
use unp::core::world::{Network, OrgKind};
use unp::wire::Ipv4Addr;

/// Runs one rrp transaction over an abstract channel with `one_way_us`
/// microseconds of one-way delay (wire + fixed per-message host cost), and
/// returns the round-trip time in milliseconds. The rrp client/server are
/// the real state machines; only the channel is abstract.
fn rrp_rtt_ms(payload: usize, one_way_us: u64) -> f64 {
    let server_addr = Ipv4Addr::new(10, 0, 0, 2);
    let mut client = RrpClient::new(100, (server_addr, 9), 1_000_000_000);
    let mut server = RrpServer::new(9);
    let mut now: u64 = 0;
    let actions = client.call(vec![7; payload], now);
    let req = actions
        .iter()
        .find_map(|a| match a {
            RrpClientAction::Send(_, m) => Some(m.clone()),
            _ => None,
        })
        .expect("request sent");
    now += one_way_us * 1_000;
    let sactions = server.on_message(Ipv4Addr::new(10, 0, 0, 1), &req);
    let RrpServerAction::Deliver {
        client: cl,
        xid,
        payload: p,
    } = &sactions[0]
    else {
        panic!("expected delivery");
    };
    let reply_actions = server.reply(*cl, *xid, p.clone());
    let reply = reply_actions
        .iter()
        .find_map(|a| match a {
            RrpServerAction::Send(_, m) => Some(m.clone()),
            _ => None,
        })
        .expect("reply sent");
    now += one_way_us * 1_000;
    let cactions = client.on_message(&reply, now);
    assert!(cactions
        .iter()
        .any(|a| matches!(a, RrpClientAction::Reply(_))));
    now as f64 / 1e6
}

fn main() {
    println!("== TCP round-trip latency by organization (512 B, Ethernet) ==");
    for org in [
        OrgKind::InKernel,
        OrgKind::SingleServer,
        OrgKind::DedicatedServer,
        OrgKind::UserLibrary,
    ] {
        let rtt = latency_ms(Network::Ethernet, org, 512, 20);
        println!("{:<32} {:>8.2} ms", org.label(), rtt);
    }

    println!();
    println!("== Protocol coexistence: TCP vs the rrp transaction library ==");
    // The user-level structure lets an application link a second,
    // latency-specialized protocol library alongside TCP. The rrp message
    // path costs roughly one library call + kernel entry + device access
    // per message (~0.6 ms one-way with the 512 B wire time on Ethernet).
    let tcp_rtt = latency_ms(Network::Ethernet, OrgKind::UserLibrary, 512, 20);
    let rrp_rtt = rrp_rtt_ms(512, 600);
    println!(
        "TCP (library) 512 B transaction:   {tcp_rtt:>6.2} ms (plus 11.9 ms setup, amortized)"
    );
    println!("rrp (library) 512 B transaction:   {rrp_rtt:>6.2} ms (no setup phase at all)");
    println!();
    println!("The request/response protocol wins small-transaction latency;");
    println!("TCP's window wins bulk transfer (see the rrp_vs_tcp ablation).");
}
