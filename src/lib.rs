//! # unp — user-level network protocols
//!
//! A production-quality Rust reproduction of
//! *"Implementing Network Protocols at User Level"*
//! (Thekkath, Nguyen, Moy & Lazowska, SIGCOMM 1993).
//!
//! The paper shows that a complex, connection-oriented, reliable transport
//! (TCP) can be implemented as a **user-linkable library** — rather than in
//! the kernel or a trusted server — without sacrificing performance or
//! security, given three mechanisms:
//!
//! 1. efficient, protected **input packet demultiplexing** (software packet
//!    filters on Ethernet; the AN1's hardware **buffer queue index**);
//! 2. **pinned shared-memory buffering** between the kernel's network I/O
//!    module and the library, with batched semaphore notification;
//! 3. **capability-checked transmission** against per-connection header
//!    templates, with a trusted **registry server** owning the port
//!    namespace and the three-way handshake.
//!
//! This crate is the facade over the workspace:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`wire`] | Ethernet/AN1/ARP/IPv4/ICMP/UDP/TCP wire formats |
//! | [`trace`] | packet-lifecycle event journal + typed metrics registry |
//! | [`sim`] | deterministic discrete-event engine + 1993 cost model |
//! | [`timers`] | hierarchical timing wheel (+ sorted-list baseline) |
//! | [`filter`] | CSPF + BPF packet-filter VMs + compiled demux |
//! | [`buffers`] | pktbufs, pinned shared regions, descriptor rings, BQI table |
//! | [`netdev`] | link models, Lance-style PIO NIC, AN1 DMA/BQI NIC |
//! | [`proto`] | ARP, IPv4 (frag/reassembly/routing), ICMP, UDP libraries |
//! | [`tcp`] | the full TCP state machine (4.3BSD-class) |
//! | [`kernel`] | the network I/O module: capabilities, templates, channels |
//! | [`registry`] | the registry server: ports, handshakes, inheritance |
//! | [`core`] | host/world assembly, all five protocol organizations, experiments |
//!
//! ## Quickstart
//!
//! ```
//! use unp::core::app::{BulkSender, SinkApp, TransferStats};
//! use unp::core::world::{build_two_hosts, connect, listen, Network, OrgKind};
//! use unp::tcp::TcpConfig;
//! use unp::wire::Ipv4Addr;
//! use std::rc::Rc;
//!
//! // Two workstations on a 10 Mb/s Ethernet, running the paper's
//! // user-level library organization.
//! let (mut world, mut engine) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
//!
//! // Host 1 listens; each accepted connection gets a sink application.
//! let stats = TransferStats::new_shared();
//! let st = Rc::clone(&stats);
//! listen(&mut world, 1, 80, TcpConfig::default(),
//!     Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))));
//!
//! // Host 0 connects through its registry server and streams 100 kB.
//! connect(&mut world, &mut engine, 0, (Ipv4Addr::new(10, 0, 0, 2), 80),
//!     TcpConfig::default(), Box::new(BulkSender::new(100_000, 4096)), 4096);
//!
//! engine.run(&mut world, 10_000_000);
//! assert_eq!(stats.borrow().bytes_received, 100_000);
//! ```

pub use unp_buffers as buffers;
pub use unp_core as core;
pub use unp_filter as filter;
pub use unp_kernel as kernel;
pub use unp_netdev as netdev;
pub use unp_proto as proto;
pub use unp_registry as registry;
pub use unp_sim as sim;
pub use unp_tcp as tcp;
pub use unp_timers as timers;
pub use unp_trace as trace;
pub use unp_wire as wire;
