#!/usr/bin/env bash
# Continuous-integration gate. Run from the repo root:
#   ./ci.sh
#
# Order matters: the cheap style gates fail fast before the build, and the
# tier-1 gate (release build + full test suite) runs last.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "CI gate passed."
