#!/usr/bin/env bash
# Continuous-integration gate. Run from the repo root:
#   ./ci.sh
#
# Order matters: the cheap style gates fail fast before the build, and the
# tier-1 gate (release build + full test suite) runs last.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

# Observability must be optional: with the `trace` feature off, every
# journal emission site compiles to an inert no-op and the workspace must
# still build and pass the root suites.
echo "== trace feature off: build + test =="
cargo build --offline --no-default-features
cargo test -q --offline --no-default-features

# The two invariants the fast paths stand on, run explicitly (and in
# release, matching how the artifacts are produced): the zero-copy frame
# path must keep the golden pcap byte-identical, and the flow-table demux
# must be indistinguishable from the linear filter scan. The journal
# determinism tests join them: two identical runs must produce
# byte-identical journals, and every delivered frame's lifecycle must
# reconstruct by frame id.
echo "== tier-1: zero-copy golden pcap + demux differential + journal (release) =="
cargo test -q --release --offline --test zero_copy --test demux_differential --test journal

# The profiler's join discipline must hold in release mode too: every
# delivered frame's stage components sum exactly to its end-to-end span,
# with fault-duplicated ids and checksum discards in the journal.
echo "== profiler joins + windowed telemetry (release) =="
cargo test -q --release --offline --test profile

# The fault soak: seeded drop/dup/reorder/corrupt/outage schedules plus a
# mid-transfer application crash per world, with the differential oracle
# (surviving streams byte-exact, failures clean) and the zero-leak sweep.
# Fixed seeds inside the test make this deterministic; release mode
# matches how the long multi-host worlds are meant to run.
echo "== fault soak (seeded, release) =="
cargo test -q --release --offline --test fault_soak

# The reproduced tables are the project's ground truth: any diff against
# the committed golden output — including from a demux or buffering
# "optimization" — is a regression, not an update, unless reviewed.
echo "== repro-tables output vs. golden tables_output.txt =="
cargo run -q -p unp-bench --release --offline --bin repro-tables > /tmp/unp_tables_output.txt
diff -u tables_output.txt /tmp/unp_tables_output.txt \
  || { echo "repro-tables output diverged from golden tables_output.txt"; exit 1; }

# Perf-regression gate: re-run the quick profiled workload and compare
# the per-stage latency means against the committed baseline. A stage
# mean more than 5% above the baseline fails; more than 5% below prints
# a warning (refresh the baseline with --profile-baseline if reviewed).
# The simulation is deterministic, so the band absorbs cost-model edits,
# not noise.
echo "== profile perf gate vs. BENCH_profile_baseline.json =="
cargo run -q -p unp-bench --release --offline --bin repro-tables -- \
  --profile-gate BENCH_profile_baseline.json

# Causal-attribution gate: the seeded faulty Table-2 workload joins
# into the cross-host causal graph; the injected fault schedule is the
# oracle, so every retransmit must be attributed (coverage exactly 1.0)
# and every lost data frame claimed exactly once or superseded, and the
# Chrome trace export must match the pinned golden byte-for-byte
# (refresh with --explain-baseline after a reviewed change).
echo "== causal attribution gate (fault-plan oracle + golden chrome trace) =="
cargo run -q -p unp-bench --release --offline --bin repro-tables -- --explain-gate
grep -q '"attribution_coverage": 1.0000' BENCH_causal.json \
  || { echo "BENCH_causal.json does not report full attribution coverage"; exit 1; }

# Churn-scaling gate: channel activate/teardown is maintained
# incrementally (O(log N) per event), so a create→activate→destroy cycle
# at 4096 channels must stay within a constant factor of the same cycle
# at 64 channels. A regression to the old O(N) rebuild-per-event shows up
# as a ~50x ratio and fails the bound.
echo "== demux churn-scaling gate (4096 vs 64 channels) =="
cargo run -q -p unp-bench --release --offline --bin repro-tables -- --churn-gate

# Multi-tenant isolation gate: three innocent tenants stream while a
# budgeted byzantine tenant floods rings, burns transmit credit, replays
# revoked capabilities, and crashes wedged. Innocent streams must stay
# byte-exact inside the throughput/latency envelope of a
# hostile-disabled baseline of the same seed, every quota drop must be
# causally attributed to the hostile tenant, and nothing may leak after
# the wedged crash. Writes BENCH_isolation.json (folded into
# BENCH_summary.json).
echo "== multi-tenant isolation gate (byzantine tenant vs quota envelope) =="
cargo run -q -p unp-bench --release --offline --bin repro-tables -- --isolation-gate
grep -q '"quota_drops_misattributed": 0' BENCH_isolation.json \
  || { echo "BENCH_isolation.json reports misattributed quota drops"; exit 1; }

# Conformance-monitor gate: the streaming checkers run over the golden
# workloads (lossy causal replay, clean transfer, live attach) and must
# flag nothing — every predicate is one-sided, no stricter than the
# stack's own. Soundness the other way: the seeded mutation harness must
# catch all 8 bug classes, the monitor's overhead on the live workload
# must stay under the bound, and the monitored 8→10^6-channel sweep
# proves O(touched-state) memory. Writes BENCH_monitor.json (folded into
# BENCH_summary.json).
echo "== conformance monitor gate (golden zero-violation + mutation coverage) =="
cargo run -q -p unp-bench --release --offline --bin repro-tables -- --monitor-gate
grep -q '"golden_violations": 0' BENCH_monitor.json \
  || { echo "BENCH_monitor.json reports violations on golden workloads"; exit 1; }

echo "CI gate passed."
