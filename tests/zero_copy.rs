//! Zero-copy frame-path equivalence tests.
//!
//! The pooled, refcounted frame path is an *optimization*: it must not
//! change a single byte of what goes on the wire. These tests pin that
//! down three ways — pooled vs. pool-disabled runs of the capture
//! workload, the committed golden pcap, and copy-on-write divergence
//! properties of the `Frame` handle itself.

use std::rc::Rc;

use proptest::prelude::*;

use unp::buffers::{frame_stats, Frame, FramePool};
use unp::core::app::{BulkSender, SinkApp, TransferStats};
use unp::core::pcap::{to_pcap_bytes, LinkType};
use unp::core::world::{build_two_hosts, connect, listen, Network, OrgKind};
use unp::filter::programs::{bpf_demux, DemuxSpec};
use unp::tcp::TcpConfig;
use unp::wire::{IpProtocol, Ipv4Addr};

/// Runs the `packet_capture` example's workload (Table-2 shape: 50 kB of
/// 4 kB writes, user-library organization, Ethernet) with a promiscuous
/// tap on the to-server direction, and returns the captured frames.
fn capture_run(pooled: bool) -> Vec<(u64, Vec<u8>)> {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    if !pooled {
        w.pool = FramePool::disabled(w.pool.buf_size());
    }
    let spec = DemuxSpec {
        link_header_len: 14,
        protocol: IpProtocol::Tcp,
        local_ip: Ipv4Addr::new(10, 0, 0, 2),
        local_port: 80,
        remote_ip: None,
        remote_port: None,
    };
    let tap = w.add_capture_tap("to-server", bpf_demux(&spec));
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    listen(
        &mut w,
        1,
        80,
        TcpConfig::default(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        TcpConfig::default(),
        Box::new(BulkSender::new(50_000, 4096)),
        4096,
    );
    assert!(eng.run(&mut w, 10_000_000), "capture run did not drain");
    assert_eq!(stats.borrow().bytes_received, 50_000);
    w.tap_frames(tap)
        .iter()
        .map(|(t, f)| (*t, f.to_vec()))
        .collect()
}

#[test]
fn tap_frames_identical_with_and_without_pooling() {
    let pooled = capture_run(true);
    let unpooled = capture_run(false);
    assert_eq!(pooled.len(), unpooled.len(), "frame counts differ");
    for (i, (a, b)) in pooled.iter().zip(&unpooled).enumerate() {
        assert_eq!(a.0, b.0, "frame {i} timestamp differs");
        assert_eq!(a.1, b.1, "frame {i} bytes differ");
    }
    // Recycling must actually have happened in the pooled run for this to
    // be a meaningful comparison.
    assert!(pooled.len() > 30, "expected a full conversation");
}

#[test]
fn capture_matches_committed_golden_pcap() {
    // The repo-root `unp-capture.pcap` is the committed golden of this
    // workload. If a protocol change legitimately alters the wire format,
    // regenerate it (`cargo run --release --example packet_capture`) and
    // commit the new file with that change.
    let frames = capture_run(true);
    let bytes = to_pcap_bytes(&frames, LinkType::Ethernet);
    let golden = std::fs::read(concat!(env!("CARGO_MANIFEST_DIR"), "/unp-capture.pcap"))
        .expect("committed golden pcap");
    assert_eq!(
        bytes, golden,
        "wire output diverged from the committed golden pcap"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mutating one handle of a shared frame copies; the other handle
    /// never observes the write.
    #[test]
    fn cow_isolates_shared_handles(
        data in proptest::collection::vec(0u8..255, 1..256),
        idx_seed in 0u64..u64::MAX,
        mask in 1u8..255,
        use_pool in proptest::bool::ANY,
    ) {
        let idx = (idx_seed % data.len() as u64) as usize;
        let a = if use_pool {
            FramePool::new(data.len() + 32, 4).alloc(16, &data)
        } else {
            Frame::from_vec(data.clone())
        };
        let mut b = a.clone();
        prop_assert!(a.ptr_eq(&b), "clone shares backing");
        prop_assert_eq!(a.ref_count(), 2);

        let before = frame_stats();
        b.as_mut_slice()[idx] ^= mask;
        let after = frame_stats();

        prop_assert!(!a.ptr_eq(&b), "write must have copied");
        prop_assert_eq!(after.cow_copies, before.cow_copies + 1);
        prop_assert_eq!(a.as_slice(), &data[..], "original unchanged");
        let mut expect = data.clone();
        expect[idx] ^= mask;
        prop_assert_eq!(b.as_slice(), &expect[..], "writer sees its write");
    }

    /// Sub-slices share the backing buffer (no copy) and keep their bytes
    /// when the parent handle is mutated afterwards.
    #[test]
    fn slices_are_zero_copy_and_stable_under_parent_writes(
        data in proptest::collection::vec(0u8..255, 2..256),
        a_seed in 0u64..u64::MAX,
        b_seed in 0u64..u64::MAX,
    ) {
        let x = (a_seed % data.len() as u64) as usize;
        let y = (b_seed % data.len() as u64) as usize;
        let (start, end) = (x.min(y), x.max(y));
        let pool = FramePool::new(data.len() + 32, 4);
        let mut parent = pool.alloc(16, &data);
        let child = parent.slice(start, end);
        prop_assert!(child.ptr_eq(&parent), "slice must not copy");
        prop_assert_eq!(child.as_slice(), &data[start..end]);

        // Parent COWs on write; the child keeps the original bytes.
        for byte in parent.as_mut_slice().iter_mut() {
            *byte = !*byte;
        }
        prop_assert_eq!(child.as_slice(), &data[start..end], "slice stable");
        prop_assert!(!child.ptr_eq(&parent));
    }

    /// Prepending a header into one handle of a shared frame leaves the
    /// other handle's window untouched (the ARP-park / tap-clone shape).
    #[test]
    fn prepend_on_shared_frame_is_isolated(
        data in proptest::collection::vec(0u8..255, 1..256),
        hdr_len in 1usize..16,
    ) {
        let pool = FramePool::new(data.len() + 32, 4);
        let parked = pool.alloc(16, &data);
        let mut sender = parked.clone();
        let hdr = sender.prepend(hdr_len);
        for (i, byte) in hdr.iter_mut().enumerate() {
            *byte = 0x80 | i as u8;
        }
        prop_assert_eq!(parked.as_slice(), &data[..], "parked copy untouched");
        prop_assert_eq!(sender.len(), data.len() + hdr_len);
        prop_assert_eq!(&sender.as_slice()[hdr_len..], &data[..]);
    }
}
