//! Multi-host worlds: several stations share one Ethernet; concurrent
//! connections from different hosts to one server must demultiplex
//! cleanly (each channel's filter matches only its own 4-tuple), and the
//! shared bus carries everyone's traffic.

use std::cell::RefCell;
use std::rc::Rc;

use unp::core::app::{BulkSender, SinkApp, TransferStats};
use unp::core::world::{build_hosts, connect, listen, Network, OrgKind};
use unp::tcp::TcpConfig;
use unp::trace::Ctr;
use unp::wire::Ipv4Addr;

#[test]
fn four_clients_one_server_streams_isolated() {
    // Hosts 0..3 are clients; host 4 is the server.
    let (mut w, mut eng) = build_hosts(5, Network::Ethernet, OrgKind::UserLibrary);
    let server_ip = Ipv4Addr::new(10, 0, 0, 5);
    let sinks: Rc<RefCell<Vec<Rc<RefCell<TransferStats>>>>> = Rc::new(RefCell::new(Vec::new()));
    let sh = Rc::clone(&sinks);
    listen(
        &mut w,
        4,
        80,
        TcpConfig::default(),
        Box::new(move || {
            let st = TransferStats::new_shared();
            sh.borrow_mut().push(Rc::clone(&st));
            // Pattern verification inside SinkApp proves per-connection
            // stream isolation: any cross-delivery would corrupt the
            // position-dependent pattern and panic.
            Box::new(SinkApp::new(st))
        }),
    );
    for client in 0..4 {
        connect(
            &mut w,
            &mut eng,
            client,
            (server_ip, 80),
            TcpConfig::default(),
            Box::new(BulkSender::new(60_000, 4096)),
            4096,
        );
    }
    assert!(eng.run(&mut w, 100_000_000), "world did not drain");
    let sinks = sinks.borrow();
    assert_eq!(sinks.len(), 4, "four connections accepted");
    for st in sinks.iter() {
        let s = st.borrow();
        assert_eq!(s.bytes_received, 60_000);
        assert!(s.peer_closed && !s.reset);
    }
    // The server's kernel ran four separate channels and reaped them all.
    assert_eq!(w.hosts[4].netio.channel_count(), 0);
    assert_eq!(w.metrics.get(Ctr::TxTemplateRejections), 0);
}

#[test]
fn cross_traffic_between_pairs_coexists() {
    // 0→1 and 2→3 transfer simultaneously on the shared bus.
    let (mut w, mut eng) = build_hosts(4, Network::Ethernet, OrgKind::UserLibrary);
    let st1 = TransferStats::new_shared();
    let st2 = TransferStats::new_shared();
    let (c1, c2) = (Rc::clone(&st1), Rc::clone(&st2));
    listen(
        &mut w,
        1,
        80,
        TcpConfig::default(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&c1)))),
    );
    listen(
        &mut w,
        3,
        80,
        TcpConfig::default(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&c2)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        TcpConfig::default(),
        Box::new(BulkSender::new(80_000, 2048)),
        2048,
    );
    connect(
        &mut w,
        &mut eng,
        2,
        (Ipv4Addr::new(10, 0, 0, 4), 80),
        TcpConfig::default(),
        Box::new(BulkSender::new(80_000, 2048)),
        2048,
    );
    assert!(eng.run(&mut w, 100_000_000));
    assert_eq!(st1.borrow().bytes_received, 80_000);
    assert_eq!(st2.borrow().bytes_received, 80_000);
    // Stations only process frames addressed to them; host 0 never saw
    // host 2's unicast data in its stack beyond the NIC's address match.
    assert!(
        w.metrics.get(Ctr::IpNotForUs) == 0,
        "unicast must filter at the NIC"
    );
}

#[test]
fn shared_bus_contention_slows_concurrent_transfers() {
    // One pair transferring alone vs two pairs sharing the bus: the shared
    // medium must show contention (per-pair throughput drops).
    let solo = {
        let (mut w, mut eng) = build_hosts(4, Network::Ethernet, OrgKind::InKernel);
        let st = TransferStats::new_shared();
        let c = Rc::clone(&st);
        listen(
            &mut w,
            1,
            80,
            TcpConfig::default(),
            Box::new(move || Box::new(SinkApp::new(Rc::clone(&c)))),
        );
        connect(
            &mut w,
            &mut eng,
            0,
            (Ipv4Addr::new(10, 0, 0, 2), 80),
            TcpConfig::default(),
            Box::new(BulkSender::new(200_000, 4096)),
            4096,
        );
        eng.run(&mut w, 100_000_000);
        let bps = st.borrow().throughput_bps().unwrap();
        bps
    };
    let contended = {
        let (mut w, mut eng) = build_hosts(4, Network::Ethernet, OrgKind::InKernel);
        let st = TransferStats::new_shared();
        let other = TransferStats::new_shared();
        let (c, o) = (Rc::clone(&st), Rc::clone(&other));
        listen(
            &mut w,
            1,
            80,
            TcpConfig::default(),
            Box::new(move || Box::new(SinkApp::new(Rc::clone(&c)))),
        );
        listen(
            &mut w,
            3,
            80,
            TcpConfig::default(),
            Box::new(move || Box::new(SinkApp::new(Rc::clone(&o)))),
        );
        connect(
            &mut w,
            &mut eng,
            0,
            (Ipv4Addr::new(10, 0, 0, 2), 80),
            TcpConfig::default(),
            Box::new(BulkSender::new(200_000, 4096)),
            4096,
        );
        connect(
            &mut w,
            &mut eng,
            2,
            (Ipv4Addr::new(10, 0, 0, 4), 80),
            TcpConfig::default(),
            Box::new(BulkSender::new(200_000, 4096)),
            4096,
        );
        eng.run(&mut w, 100_000_000);
        let bps = st.borrow().throughput_bps().unwrap();
        bps
    };
    assert!(
        contended < solo * 0.85,
        "bus sharing must cost throughput: solo {solo:.0} vs contended {contended:.0}"
    );
}
