//! Cross-host causal tracing integration tests: the fault-plan oracle.
//!
//! The injected `FaultPlan` schedule is ground truth — every retransmit
//! the TCP machines fire must trace back to the injected event that
//! caused it, every lost data frame must be claimed by exactly one
//! attribution (or superseded by a redundant delivery of its range),
//! and every journey's latency split must telescope exactly to its
//! cross-host end-to-end span. Gated on the `trace` feature: with
//! tracing compiled out these tests vanish rather than fail.
#![cfg(feature = "trace")]

use std::rc::Rc;

use unp::core::app::{BulkSender, SinkApp, TransferStats};
use unp::core::faults::{FaultPlan, LinkFaults, RingPressure};
use unp::core::world::{build_two_hosts, connect, install_faults, listen, Network, OrgKind};
use unp::tcp::TcpConfig;
use unp::trace::{CausalGraph, Cause, JourneyFate, Loss, Record};
use unp::wire::Ipv4Addr;

const TOTAL: u64 = 150_000;

/// One Table-2-style bulk run with the journal armed before the world
/// is built (frame ids and the clock must start from zero for the run
/// to be reproducible).
fn bulk_run(total: u64, user_packet: usize, faults: Option<FaultPlan>) -> Vec<Record> {
    unp::trace::journal_start();
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    let mut cfg = TcpConfig::bulk_transfer();
    cfg.mss_local = user_packet.min(1460);
    listen(
        &mut w,
        1,
        80,
        cfg.clone(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        cfg,
        Box::new(BulkSender::new(total, user_packet)),
        user_packet,
    );
    if let Some(plan) = faults {
        install_faults(&mut w, &mut eng, plan);
    }
    assert!(eng.run(&mut w, u64::MAX), "run did not drain");
    assert_eq!(stats.borrow().bytes_received, total, "transfer incomplete");
    unp::trace::journal_stop()
}

/// The oracle body: total attribution, and exactly-once claims over
/// every lost data-carrying frame (a redundantly-delivered range may go
/// unclaimed — the retransmit it would have needed never happened).
fn assert_oracle(graph: &CausalGraph) {
    assert_eq!(
        graph.coverage(),
        1.0,
        "unattributed rexmits: {:?}",
        graph
            .rexmits
            .iter()
            .filter(|a| !a.cause.is_attributed())
            .map(|a| (a.t, a.seq))
            .collect::<Vec<_>>()
    );
    let claims = graph.claims();
    for (j, loss) in graph.losses() {
        let Some(s) = &j.seg else { continue };
        if s.payload == 0 {
            continue;
        }
        let n = claims.get(&j.frame).copied().unwrap_or(0);
        assert!(
            n == 1 || (n == 0 && graph.superseded(j)),
            "lost data frame f{} ({}) claimed {n} times, want exactly 1",
            j.frame,
            loss.label()
        );
    }
}

#[test]
fn clean_run_has_no_rexmits_and_exact_splits() {
    let recs = bulk_run(TOTAL, 4096, None);
    let graph = CausalGraph::build(&recs);
    graph.check_consistency().expect("splits must telescope");
    assert!(graph.rexmits.is_empty(), "clean run retransmitted");
    assert_eq!(graph.losses().count(), 0, "clean run lost frames");
    assert_eq!(graph.coverage(), 1.0, "vacuous coverage is 1.0");
    assert!(
        graph.journeys.len() > 40,
        "expected many journeys, got {}",
        graph.journeys.len()
    );
    // Every data journey carries the full tx-side story.
    let complete = graph
        .journeys
        .iter()
        .filter(|j| j.seg.is_some() && j.nic_tx.is_some() && j.lat_split().is_some())
        .count();
    assert!(
        complete > 30,
        "expected complete tx->rx journeys, got {complete}"
    );
}

#[test]
fn drop_only_plan_attributes_every_rexmit_to_a_wire_drop() {
    let mut plan = FaultPlan::clean(42);
    plan.default_link = LinkFaults {
        drop: 0.06,
        ..LinkFaults::clean()
    };
    let recs = bulk_run(TOTAL, 1460, Some(plan));
    let graph = CausalGraph::build(&recs);
    graph.check_consistency().expect("splits must telescope");
    assert!(
        !graph.rexmits.is_empty(),
        "a 6% drop plan must force retransmits"
    );
    assert_oracle(&graph);
    // With drops as the only impairment, every cause is a drop (of data
    // or of the ACK acknowledging it) — or a delay-induced spurious
    // retransmit, which the tracer names rather than guessing a fault:
    // recovery bursts congest the link queue enough to hold a frame
    // past the dup-ACK threshold.
    let mut wire_drops = 0;
    for a in &graph.rexmits {
        match a.cause {
            Cause::DataLoss {
                loss: Loss::WireDrop { .. },
                ..
            }
            | Cause::AckLoss {
                loss: Loss::WireDrop { .. },
                ..
            } => wire_drops += 1,
            Cause::LateDelivery { .. } => {}
            other => panic!("drop-only plan produced cause {other:?}"),
        }
    }
    assert!(wire_drops > 0, "no rexmit traced back to an injected drop");
}

#[test]
fn lossy_plan_stays_fully_attributed() {
    let recs = bulk_run(TOTAL, 1460, Some(FaultPlan::lossy(7, 0.04)));
    let graph = CausalGraph::build(&recs);
    graph.check_consistency().expect("splits must telescope");
    assert!(!graph.rexmits.is_empty(), "lossy plan must force rexmits");
    assert_oracle(&graph);
}

#[test]
fn ring_pressure_losses_name_the_slow_consumer() {
    let mut plan = FaultPlan::clean(5);
    // The receiver's consumer stalls early in the transfer: its rings
    // clamp to one slot while the sender's window is still opening.
    plan.pressure.push(RingPressure {
        host: 1,
        start: 2_000_000,
        end: 40_000_000,
        cap: 1,
    });
    let recs = bulk_run(TOTAL, 1460, Some(plan));
    let graph = CausalGraph::build(&recs);
    graph.check_consistency().expect("splits must telescope");
    let pressure_losses = graph
        .losses()
        .filter(|(_, l)| matches!(l, Loss::RingOverflow { pressure: true, .. }))
        .count();
    assert!(
        pressure_losses > 0,
        "the clamped ring never overflowed (losses: {:?})",
        graph.loss_counts()
    );
    assert_oracle(&graph);
    assert!(
        graph.rexmits.iter().any(|a| matches!(
            a.cause,
            Cause::DataLoss {
                loss: Loss::RingOverflow { pressure: true, .. },
                ..
            }
        )),
        "no rexmit was attributed to the injected pressure (causes: {:?})",
        graph.cause_counts()
    );
}

#[test]
fn explain_surfaces_cover_the_injected_story() {
    let recs = bulk_run(60_000, 1460, Some(FaultPlan::lossy(11, 0.05)));
    let graph = CausalGraph::build(&recs);
    assert_oracle(&graph);

    let conn = graph.explain_conn(80);
    assert!(
        conn.contains("rexmit"),
        "conn report names rexmits:\n{conn}"
    );
    assert!(
        conn.contains("losses:"),
        "conn report lists losses:\n{conn}"
    );

    let (lost, _) = graph.losses().next().expect("seeded plan injects loss");
    let frame = graph.explain_frame(lost.frame);
    assert!(
        frame.contains("fate:"),
        "frame report names the fate:\n{frame}"
    );
    assert!(
        frame.contains("tcp tx"),
        "frame report shows the tx timeline:\n{frame}"
    );

    // A delivered journey's report carries the exact latency split.
    let arrived = graph
        .journeys
        .iter()
        .find(|j| j.fate == JourneyFate::Arrived && j.lat_split().is_some())
        .expect("an arrived journey with a split");
    let report = graph.explain_frame(arrived.frame);
    assert!(
        report.contains("latency split"),
        "arrived report splits latency:\n{report}"
    );
}

#[test]
fn chrome_trace_is_valid_and_complete() {
    let recs = bulk_run(60_000, 1460, Some(FaultPlan::lossy(11, 0.05)));
    let graph = CausalGraph::build(&recs);
    let trace = graph.render_chrome_trace();
    let doc = unp::trace::json::parse(&trace).expect("chrome trace parses");
    let events = doc
        .get("traceEvents")
        .and_then(unp::trace::json::Value::items)
        .expect("traceEvents array");
    let ph = |k: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(unp::trace::json::Value::as_str) == Some(k))
            .count()
    };
    assert!(ph("X") > 100, "duration events per stage");
    assert!(ph("s") > 0 && ph("f") > 0, "flow arrows tie the wire hops");
    assert!(
        ph("f") <= ph("s"),
        "a flow finish needs a start (lost frames start but never finish)"
    );
    assert!(ph("i") > 0, "fault/rexmit instants present");
    assert!(ph("M") >= 6, "process/thread metadata for both hosts");
}
