//! The multi-tenant isolation oracle (ISSUE 9's tentpole proof).
//!
//! Three innocent tenants and one hostile tenant share host 0's network
//! I/O module. The hostile tenant runs the full byzantine repertoire —
//! a ring flood (its library never consumes), a transmit flood, a
//! replayed-capability/template-violation storm, stale BQI re-announces,
//! and a wedged crash that skips the library's reclamation sweep. The
//! oracle runs the same seeded scenario twice, byzantine schedules off
//! (baseline) and on (hostile), and asserts:
//!
//! (a) innocent streams stay byte-exact (`SinkApp` pattern-verifies);
//! (b) innocent throughput and p99 app-deliver latency stay inside an
//!     envelope measured from the baseline run;
//! (c) every quota drop in the causal trace is attributed to the
//!     hostile tenant (`Loss::QuotaExceeded { tenant }`);
//! (d) zero resources leak after the hostile tenant is crashed and
//!     reclaimed through the registry/kernel backstop alone.
#![cfg(feature = "trace")]

use std::cell::RefCell;
use std::rc::Rc;

use unp::buffers::live_frames;
use unp::buffers::OwnerTag;
use unp::core::app::{BulkSender, SinkApp, TransferStats};
use unp::core::faults::{ByzantineKind, ByzantineSchedule, FaultPlan};
use unp::core::world::{
    build_hosts, connect_as, crash_tenant, install_faults, listen, listen_as, sync_tenant_scopes,
    Network, OrgKind,
};
use unp::kernel::TenantBudget;
use unp::tcp::TcpConfig;
use unp::trace::{CausalGraph, Ctr, Gauge, Loss, Monitor, Profile};

const INNOCENTS: usize = 3;
const XFER: u64 = 150_000;
const HOSTILE: u64 = 66;
/// Byzantine activity window: opens once all connections are up,
/// closes when the hostile tenant is crashed. Connection setup goes
/// through the registry's (deliberately slow) control path and contends
/// with data transfer for the host CPU, so establishment takes tens of
/// milliseconds — the window starts well after that.
const BYZ_START: u64 = 160_000_000;
const CRASH_AT: u64 = 320_000_000;

struct RunResult {
    /// Per-innocent-tenant (throughput bps, last byte instant), server side.
    innocents: Vec<(f64, u64)>,
    /// Sorted end-to-end app-deliver latencies of the innocent streams'
    /// delivered frames (server side).
    innocent_lat: Vec<u64>,
    quota_drops: u64,
    tx_quota_rejections: u64,
    /// Quota-exceeded losses in the causal graph, with their tenants.
    quota_losses: Vec<u64>,
    /// Quota drops examined by the streaming conformance monitor (its
    /// earned-occupancy checker; nonzero only when the flood runs).
    monitor_quota_checked: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// One seeded scenario run. `hostile` arms the byzantine schedules,
/// budgets, and the wedged crash; the baseline keeps the identical
/// topology and traffic but the hostile tenant behaves.
fn run_scenario(hostile: bool) -> RunResult {
    let base_frames = live_frames();
    let result = {
        unp::trace::journal_start();
        // The conformance monitor streams alongside the journal: even a
        // byzantine tenant must not trip a checker, because everything
        // the kernel lets it do (flood until the quota drops it, burn
        // credit, replay capabilities into clean rejections) is
        // protocol-conformant behavior — only the *stack* lying about
        // what happened would violate.
        let monitor = unp::trace::attach(Box::new(Monitor::new()));
        let (mut w, mut eng) = build_hosts(2, Network::Ethernet, OrgKind::UserLibrary);
        let server_ip = w.hosts[1].ip;
        let client_ip = w.hosts[0].ip;

        // Innocent tenants 11..=13 on host 0 stream to server ports 81..
        // Connects are staggered so the handshakes don't all contend for
        // the registry at once.
        let mut sinks = Vec::new();
        for i in 0..INNOCENTS {
            let st = TransferStats::new_shared();
            let sh = Rc::clone(&st);
            listen(
                &mut w,
                1,
                81 + i as u16,
                TcpConfig::default(),
                Box::new(move || Box::new(SinkApp::new(Rc::clone(&sh)))),
            );
            eng.at(i as u64 * 10_000_000 + 1, move |w, eng| {
                connect_as(
                    w,
                    eng,
                    0,
                    Some(OwnerTag(11 + i as u64)),
                    (server_ip, 81 + i as u16),
                    TcpConfig::default(),
                    Box::new(BulkSender::new(XFER, 4096)),
                    4096,
                );
            });
            sinks.push(st);
        }

        // The hostile tenant's two connections: an active open to the
        // server (the transmit-flood/storm vehicle, held open until the
        // crash) and a listener fed by the server (the ring-flood victim:
        // its consumer never wakes during the flood window).
        let hostile_rx = TransferStats::new_shared();
        let hr = Rc::clone(&hostile_rx);
        listen_as(
            &mut w,
            0,
            OwnerTag(HOSTILE),
            90,
            TcpConfig::default(),
            Box::new(move || Box::new(SinkApp::new(Rc::clone(&hr)).without_verify())),
        );
        let server_sink = TransferStats::new_shared();
        let ss = Rc::clone(&server_sink);
        listen(
            &mut w,
            1,
            80,
            TcpConfig::default(),
            Box::new(move || Box::new(SinkApp::new(Rc::clone(&ss)).without_verify())),
        );
        eng.at(31_000_000, move |w, eng| {
            connect_as(
                w,
                eng,
                0,
                Some(OwnerTag(HOSTILE)),
                (server_ip, 80),
                TcpConfig::default(),
                Box::new(BulkSender::new(30_000, 4096).without_close()),
                4096,
            );
        });
        eng.at(36_000_000, move |w, eng| {
            connect_as(
                w,
                eng,
                1,
                None,
                (client_ip, 90),
                TcpConfig::default(),
                Box::new(BulkSender::new(400_000, 4096).without_close()),
                4096,
            );
        });

        let mut plan = FaultPlan::clean(21);
        if hostile {
            w.hosts[0].netio.set_tenant_budget(
                OwnerTag(HOSTILE),
                TenantBudget {
                    ring_slots: 8,
                    tx_credit: 40,
                    max_channels: 4,
                },
            );
            for kind in [
                ByzantineKind::RingFlood,
                ByzantineKind::TransmitFlood {
                    burst: 12,
                    period: 2_000_000,
                },
                ByzantineKind::CapabilityStorm { period: 3_000_000 },
                ByzantineKind::StaleBqi { period: 5_000_000 },
                ByzantineKind::WedgedRegistry,
            ] {
                plan.byzantine.push(ByzantineSchedule {
                    host: 0,
                    tenant: HOSTILE,
                    kind,
                    start: BYZ_START,
                    end: CRASH_AT,
                });
            }
        }
        install_faults(&mut w, &mut eng, plan);
        // Harvest the server-side channel ids of the innocent streams
        // once everything is established (needed to scope the latency
        // profile to innocent traffic only).
        let chan_map: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let cm = Rc::clone(&chan_map);
        eng.at(BYZ_START - 1_000_000, move |w, _eng| {
            let mut ids: Vec<u32> = w.hosts[1]
                .conns
                .values()
                .filter(|c| (81..81 + INNOCENTS as u16).contains(&c.tcb.local().1))
                .filter_map(|c| c.chan.as_ref().map(|ci| ci.id.0))
                .collect();
            ids.sort_unstable();
            *cm.borrow_mut() = ids;
        });
        // Both runs crash the hostile tenant at the same instant so the
        // workloads stay comparable (in the baseline it dies politely —
        // no wedge schedule — and its held-open streams are inherited).
        eng.at(CRASH_AT, move |w, eng| {
            crash_tenant(w, eng, 0, OwnerTag(HOSTILE));
        });

        assert!(eng.run(&mut w, 2_500_000_000), "scenario did not drain");
        sync_tenant_scopes(&mut w);

        let innocent_chans = chan_map.borrow().clone();
        assert_eq!(
            innocent_chans.len(),
            INNOCENTS,
            "innocent connections not all established before the window"
        );
        let records = unp::trace::journal_stop();
        let mon = unp::trace::detach_as::<Monitor>(monitor).expect("monitor still attached");
        assert_eq!(
            mon.total_violations(),
            0,
            "conformant {} run flagged: {:?}",
            if hostile { "hostile" } else { "baseline" },
            mon.violations().first()
        );
        assert!(mon.checked().tcp_acks > 0, "monitor saw no traffic");

        // (a) byte-exact innocent streams, in-order close, no reset.
        for (i, st) in sinks.iter().enumerate() {
            let s = st.borrow();
            assert_eq!(s.bytes_received, XFER, "innocent {i} lost bytes");
            assert!(s.peer_closed && !s.reset, "innocent {i} failed");
        }

        // (d) zero leaked resources after the crash: the hostile tenant
        // holds no channels, ring slots, registry state, or BQI slots.
        let ts = w.hosts[0]
            .netio
            .tenant_stats(OwnerTag(HOSTILE))
            .expect("hostile tenant account exists");
        assert_eq!(ts.open_channels, 0, "hostile channels leaked");
        assert_eq!(ts.ring_slots, 0, "hostile ring occupancy leaked");
        for h in &w.hosts {
            assert_eq!(h.netio.channel_count(), 0, "host {} leaked channels", h.idx);
            assert_eq!(h.netio.flow_table_len(), 0, "host {} leaked flows", h.idx);
            assert_eq!(h.registry.tracked(), 0, "host {} registry lingers", h.idx);
            assert!(h.conns.is_empty(), "host {} leaked connections", h.idx);
        }
        assert_eq!(w.metrics.gauge(Gauge::OpenChannels), 0);
        assert_eq!(w.metrics.gauge(Gauge::ActiveConnections), 0);

        // Innocent app-deliver latency from the receive-path profile,
        // scoped to the innocent streams' server-side channels.
        let profile = Profile::build(&records);
        let mut lat: Vec<u64> = profile
            .traces
            .iter()
            .filter(|t| {
                t.is_complete()
                    && t.host == Some(1)
                    && t.channel.is_some_and(|c| innocent_chans.contains(&c))
            })
            .filter_map(|t| t.end_to_end())
            .collect();
        lat.sort_unstable();
        assert!(!lat.is_empty(), "no innocent deliveries profiled");

        // (c) causal attribution of every quota drop.
        let graph = CausalGraph::build(&records);
        let quota_losses: Vec<u64> = graph
            .losses()
            .filter_map(|(_, l)| match l {
                Loss::QuotaExceeded { tenant, .. } => Some(tenant),
                _ => None,
            })
            .collect();

        RunResult {
            innocents: sinks
                .iter()
                .map(|s| {
                    let s = s.borrow();
                    (
                        s.throughput_bps().expect("innocent throughput"),
                        s.last_byte_at.expect("innocent completion"),
                    )
                })
                .collect(),
            innocent_lat: lat,
            quota_drops: w.metrics.get(Ctr::ChQuotaDrops),
            tx_quota_rejections: w.metrics.get(Ctr::TxQuotaRejections),
            quota_losses,
            monitor_quota_checked: mon.checked().quota_drops,
        }
    };
    assert_eq!(live_frames(), base_frames, "pooled frame buffers leaked");
    result
}

#[test]
fn hostile_tenant_cannot_perturb_innocents() {
    let base = run_scenario(false);
    let hot = run_scenario(true);

    // The baseline is genuinely quota-silent...
    assert_eq!(base.quota_drops, 0, "baseline saw quota drops");
    assert_eq!(base.tx_quota_rejections, 0);
    assert!(base.quota_losses.is_empty());
    // ...and the hostile run genuinely exercised both quota dimensions.
    assert!(hot.quota_drops > 0, "ring flood never hit the quota");
    assert!(
        hot.tx_quota_rejections > 0,
        "tx flood never ran out of credit"
    );
    // The monitor's earned-occupancy checker was vacuous in the baseline
    // (no drops to check) and exercised by the flood — without flagging.
    assert_eq!(base.monitor_quota_checked, 0);
    assert!(
        hot.monitor_quota_checked > 0,
        "monitor never checked a quota drop in the hostile run"
    );

    // (c) every causally-traced quota loss names the hostile tenant, and
    // the trace accounts for every drop the kernel charged (a clean link
    // delivers each dropped frame exactly once, so the counts match).
    assert!(
        !hot.quota_losses.is_empty(),
        "no quota loss reached the trace"
    );
    assert_eq!(
        hot.quota_losses.len() as u64,
        hot.quota_drops,
        "causal trace missed quota drops"
    );
    assert!(
        hot.quota_losses.iter().all(|&t| t == HOSTILE),
        "a quota drop was attributed to the wrong tenant: {:?}",
        hot.quota_losses
    );

    // (b) innocent throughput and p99 app-deliver latency envelopes.
    for (i, (&(tb, lb), &(th, lh))) in base.innocents.iter().zip(&hot.innocents).enumerate() {
        assert!(
            th >= 0.6 * tb,
            "innocent {i} throughput collapsed: {th:.0} vs baseline {tb:.0} bps"
        );
        assert!(
            lh <= lb + lb / 2 + 10_000_000,
            "innocent {i} completion degraded: {lh} vs baseline {lb} ns"
        );
    }
    let (p99b, p99h) = (
        percentile(&base.innocent_lat, 0.99),
        percentile(&hot.innocent_lat, 0.99),
    );
    // The quota layer cannot (and should not) hide shared-link and
    // shared-CPU contention, only unbounded resource capture — hence a
    // 2.5x + 5ms envelope rather than parity.
    assert!(
        p99h <= 5 * p99b / 2 + 5_000_000,
        "innocent p99 app-deliver latency blew the envelope: {p99h} vs baseline {p99b} ns"
    );
}
