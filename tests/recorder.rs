//! Flight-recorder window property test (satellite of the streaming
//! observers tentpole): for any capacity, each per-host ring is the exact
//! tail of that host's journal lane, and `dump_all` merges the lanes back
//! into emission order. Gated on the `trace` feature.
#![cfg(feature = "trace")]

use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

use unp::core::app::{BulkSender, SinkApp, TransferStats};
use unp::core::world::{build_two_hosts, connect, listen, Network, OrgKind};
use unp::tcp::TcpConfig;
use unp::trace::{render, FlightRecorder, Record};
use unp::wire::Ipv4Addr;

const TOTAL: u64 = 150_000;

/// One bulk run with the full journal armed and one flight recorder per
/// entry of `caps` attached simultaneously, all observing the same
/// record stream. Returns the journal plus the detached recorders in
/// `caps` order.
fn recorded_run(caps: &[usize]) -> (Vec<Record>, Vec<FlightRecorder>) {
    unp::trace::journal_start();
    let handles: Vec<_> = caps
        .iter()
        .map(|&cap| unp::trace::attach(Box::new(FlightRecorder::new(cap))))
        .collect();

    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    let cfg = TcpConfig::bulk_transfer();
    listen(
        &mut w,
        1,
        80,
        cfg.clone(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        cfg,
        Box::new(BulkSender::new(TOTAL, 2048)),
        2048,
    );
    assert!(eng.run(&mut w, u64::MAX), "run did not drain");
    assert_eq!(stats.borrow().bytes_received, TOTAL, "transfer incomplete");

    let journal = unp::trace::journal_stop();
    let recorders = handles
        .into_iter()
        .map(|h| *unp::trace::detach_as::<FlightRecorder>(h).expect("recorder detaches"))
        .collect();
    (journal, recorders)
}

#[test]
fn recorder_windows_are_exact_journal_tails() {
    let caps = [1usize, 2, 3, 7, 16, 64, 100_000];
    let (journal, recorders) = recorded_run(&caps);
    assert!(journal.len() > 200, "need a substantial run to window");

    let hosts: BTreeSet<Option<u16>> = journal.iter().map(|r| r.host).collect();
    assert!(hosts.len() >= 2, "expected at least two host lanes");

    for (fr, &cap) in recorders.iter().zip(&caps) {
        assert_eq!(fr.capacity_per_host(), cap);
        let mut held = 0usize;
        let mut evicted = 0u64;
        for &h in &hosts {
            let lane: Vec<Record> = journal.iter().filter(|r| r.host == h).cloned().collect();
            let tail = &lane[lane.len().saturating_sub(cap)..];
            let got = fr.dump(h);
            assert_eq!(
                render(&got),
                render(tail),
                "cap {cap} host {h:?}: ring must be the lane's exact tail"
            );
            held += tail.len();
            evicted += (lane.len() - tail.len()) as u64;
        }
        assert_eq!(
            fr.occupancy(),
            held,
            "cap {cap}: occupancy must sum the lanes"
        );
        assert_eq!(
            fr.evicted(),
            evicted,
            "cap {cap}: every overwrite must be counted"
        );

        // dump_all merges the per-host rings back into emission order: it
        // must equal the journal filtered to the union of the lane tails.
        let start: HashMap<Option<u16>, usize> = hosts
            .iter()
            .map(|&h| {
                let n = journal.iter().filter(|r| r.host == h).count();
                (h, n.saturating_sub(cap))
            })
            .collect();
        let mut seen: HashMap<Option<u16>, usize> = HashMap::new();
        let mut expect = Vec::new();
        for r in &journal {
            let c = seen.entry(r.host).or_insert(0);
            if *c >= start[&r.host] {
                expect.push(r.clone());
            }
            *c += 1;
        }
        assert_eq!(
            render(&fr.dump_all()),
            render(&expect),
            "cap {cap}: dump_all must interleave lanes in emission order"
        );
    }

    // The widest recorder never evicted, so its merged dump IS the journal.
    let widest = recorders.last().unwrap();
    assert_eq!(widest.evicted(), 0);
    assert_eq!(render(&widest.dump_all()), render(&journal));
}
