//! Security-model tests: the paper's two protection objectives —
//! "only entities that are authorized to communicate with each other
//! should be able to communicate" and "entities should not be able to
//! impersonate others" — exercised through the kernel interfaces an
//! adversarial library would have to get past.

use unp::buffers::{BqiTable, Frame, OwnerTag, RingId};
use unp::filter::programs::DemuxSpec;
use unp::kernel::{Delivery, HeaderTemplate, NetIoModule, PortSpace, TxError};
use unp::wire::{
    EtherType, EthernetRepr, IpProtocol, Ipv4Addr, Ipv4Repr, MacAddr, SeqNum, TcpFlags, TcpRepr,
};

const VICTIM_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const ATTACKER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 66);
const PEER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

fn tcp_frame(src_ip: Ipv4Addr, dst_ip: Ipv4Addr, sport: u16, dport: u16, payload: &[u8]) -> Frame {
    let t = TcpRepr {
        src_port: sport,
        dst_port: dport,
        seq: SeqNum(1),
        ack_num: SeqNum(0),
        flags: TcpFlags::ack(),
        window: 1000,
        mss: None,
    };
    let seg = t.build_segment(src_ip, dst_ip, payload);
    let ip = Ipv4Repr::simple(src_ip, dst_ip, IpProtocol::Tcp, seg.len());
    Frame::from_vec(
        EthernetRepr {
            dst: MacAddr::from_host_index(2),
            src: MacAddr::from_host_index(1),
            ethertype: EtherType::Ipv4,
        }
        .build_frame(&ip.build_packet(&seg)),
    )
}

fn victim_channel(m: &mut NetIoModule) -> (unp::kernel::ChannelId, unp::kernel::Capability) {
    let spec = DemuxSpec {
        link_header_len: 14,
        protocol: IpProtocol::Tcp,
        local_ip: VICTIM_IP,
        local_port: 80,
        remote_ip: Some(PEER_IP),
        remote_port: Some(5000),
    };
    let template = HeaderTemplate {
        link_header_len: 14,
        src_mac: None,
        dst_mac: None,
        ethertype: EtherType::Ipv4,
        protocol: IpProtocol::Tcp,
        src_ip: VICTIM_IP,
        dst_ip: PEER_IP,
        src_port: 80,
        dst_port: Some(5000),
        bqi: None,
    };
    let (id, send, _recv, _ring) = m.create_channel(OwnerTag(1), &spec, template, 8, 2048);
    m.activate(id);
    (id, send)
}

#[test]
fn source_spoofing_is_rejected_at_transmit() {
    let mut m = NetIoModule::new();
    let (_, send) = victim_channel(&mut m);
    // The library tries to send with a source IP it does not own.
    let spoofed = tcp_frame(ATTACKER_IP, PEER_IP, 80, 5000, b"evil");
    assert!(matches!(
        m.transmit(send, &spoofed),
        Err(TxError::Template(_))
    ));
    // ... or with someone else's source port (a different connection).
    let port_theft = tcp_frame(VICTIM_IP, PEER_IP, 81, 5000, b"evil");
    assert!(matches!(
        m.transmit(send, &port_theft),
        Err(TxError::Template(_))
    ));
    // ... or to a destination the connection was not set up for.
    let redirect = tcp_frame(VICTIM_IP, ATTACKER_IP, 80, 5000, b"evil");
    assert!(matches!(
        m.transmit(send, &redirect),
        Err(TxError::Template(_))
    ));
    assert_eq!(m.tx_rejections, 3);
    // The legitimate frame still passes.
    let legit = tcp_frame(VICTIM_IP, PEER_IP, 80, 5000, b"fine");
    assert!(m.transmit(send, &legit).is_ok());
}

#[test]
fn guessed_capabilities_are_useless() {
    let mut m = NetIoModule::new();
    let (_, _send) = victim_channel(&mut m);
    let legit = tcp_frame(VICTIM_IP, PEER_IP, 80, 5000, b"x");
    // An attacker without the capability value cannot transmit: every
    // guessed value is rejected (unforgeability is by construction — the
    // value space is sparse and the kernel validates every use).
    for guess in [0u64, 1, 0xdead_beef, u64::MAX] {
        let forged = unp::kernel::Capability::forge_for_tests(guess);
        assert_eq!(
            m.transmit(forged, &legit).err(),
            Some(TxError::BadCapability)
        );
    }
}

#[test]
fn other_connections_traffic_is_not_deliverable_to_us() {
    let mut m = NetIoModule::new();
    let (id, _) = victim_channel(&mut m);
    // Traffic for a different 4-tuple does not match our binding; it goes
    // to protected kernel memory, not to any application ring.
    let other = tcp_frame(PEER_IP, VICTIM_IP, 5001, 80, b"someone else's data");
    assert!(matches!(
        m.deliver_software(&other),
        Delivery::KernelDefault { .. }
    ));
    // Our own traffic still reaches us.
    let ours = tcp_frame(PEER_IP, VICTIM_IP, 5000, 80, b"ours");
    assert!(matches!(m.deliver_software(&ours), Delivery::Channel { id: did, .. } if did == id));
}

#[test]
fn receive_capability_cannot_transmit_and_vice_versa() {
    let mut m = NetIoModule::new();
    let spec = DemuxSpec {
        link_header_len: 14,
        protocol: IpProtocol::Tcp,
        local_ip: VICTIM_IP,
        local_port: 80,
        remote_ip: Some(PEER_IP),
        remote_port: Some(5000),
    };
    let template = HeaderTemplate {
        link_header_len: 14,
        src_mac: None,
        dst_mac: None,
        ethertype: EtherType::Ipv4,
        protocol: IpProtocol::Tcp,
        src_ip: VICTIM_IP,
        dst_ip: PEER_IP,
        src_port: 80,
        dst_port: Some(5000),
        bqi: None,
    };
    let (id, send, recv, _) = m.create_channel(OwnerTag(1), &spec, template, 8, 2048);
    m.activate(id);
    let legit = tcp_frame(VICTIM_IP, PEER_IP, 80, 5000, b"x");
    assert_eq!(m.transmit(recv, &legit).err(), Some(TxError::NoSendRight));
    assert!(m.consume(send).is_err(), "send capability cannot consume");
}

#[test]
fn bqi_entries_are_owner_protected() {
    let mut t = BqiTable::new(16, RingId(0));
    let victim = OwnerTag(1);
    let attacker = OwnerTag(2);
    let bqi = t.allocate(victim, RingId(5)).unwrap();
    // The attacker cannot free (and thus re-bind) the victim's index.
    assert!(!t.free(bqi, attacker));
    assert_eq!(t.resolve(bqi), RingId(5));
    // Nobody can unbind the kernel's protected entry 0.
    assert!(!t.free(0, attacker));
    assert!(!t.free(0, victim));
}

#[test]
fn port_rights_do_not_leak_between_holders() {
    let mut ps: PortSpace<u32> = PortSpace::new();
    let alice = OwnerTag(1);
    let mallory = OwnerTag(3);
    let p = ps.allocate(alice, 7);
    assert!(ps.get(p, mallory).is_err());
    assert!(ps.transfer(p, mallory, mallory).is_err());
    assert!(ps.destroy(p, mallory).is_err());
    // Alice still holds it.
    assert_eq!(ps.get(p, alice), Ok(&7));
}

#[test]
fn channel_destruction_requires_ownership() {
    let mut m = NetIoModule::new();
    let (id, _) = victim_channel(&mut m);
    assert!(!m.destroy_channel(id, OwnerTag(99)), "stranger refused");
    assert!(m.destroy_channel(id, OwnerTag(1)), "owner allowed");
}

/// A channel the attacker legitimately holds, under its own tenant.
fn attacker_channel(
    m: &mut NetIoModule,
) -> (
    unp::kernel::ChannelId,
    unp::kernel::Capability,
    unp::kernel::Capability,
) {
    let spec = DemuxSpec {
        link_header_len: 14,
        protocol: IpProtocol::Tcp,
        local_ip: VICTIM_IP,
        local_port: 8080,
        remote_ip: Some(PEER_IP),
        remote_port: Some(6000),
    };
    let template = HeaderTemplate {
        link_header_len: 14,
        src_mac: None,
        dst_mac: None,
        ethertype: EtherType::Ipv4,
        protocol: IpProtocol::Tcp,
        src_ip: VICTIM_IP,
        dst_ip: PEER_IP,
        src_port: 8080,
        dst_port: Some(6000),
        bqi: None,
    };
    let (id, send, recv, _ring) = m.create_channel(OwnerTag(2), &spec, template, 8, 2048);
    m.activate(id);
    (id, send, recv)
}

#[test]
fn revoked_capabilities_cannot_be_replayed() {
    let mut m = NetIoModule::new();
    let spec = DemuxSpec {
        link_header_len: 14,
        protocol: IpProtocol::Tcp,
        local_ip: VICTIM_IP,
        local_port: 80,
        remote_ip: Some(PEER_IP),
        remote_port: Some(5000),
    };
    let template = HeaderTemplate {
        link_header_len: 14,
        src_mac: None,
        dst_mac: None,
        ethertype: EtherType::Ipv4,
        protocol: IpProtocol::Tcp,
        src_ip: VICTIM_IP,
        dst_ip: PEER_IP,
        src_port: 80,
        dst_port: Some(5000),
        bqi: None,
    };
    let (id, send, recv, _) = m.create_channel(OwnerTag(1), &spec, template.clone(), 8, 2048);
    m.activate(id);
    let legit = tcp_frame(VICTIM_IP, PEER_IP, 80, 5000, b"x");
    assert!(m.transmit(send, &legit).is_ok());

    // The channel is torn down: every outstanding capability is revoked.
    assert!(m.destroy_channel(id, OwnerTag(1)));
    assert_eq!(m.transmit(send, &legit).err(), Some(TxError::BadCapability));
    assert_eq!(m.consume(recv).err(), Some(TxError::BadCapability));

    // Re-creating the same binding mints *fresh* capabilities — the
    // replayed ones stay dead (no capability-value reuse across
    // generations of the same channel).
    let spec2 = DemuxSpec {
        link_header_len: 14,
        protocol: IpProtocol::Tcp,
        local_ip: VICTIM_IP,
        local_port: 80,
        remote_ip: Some(PEER_IP),
        remote_port: Some(5000),
    };
    let (id2, send2, _recv2, _) = m.create_channel(OwnerTag(1), &spec2, template, 8, 2048);
    m.activate(id2);
    assert_ne!(send, send2);
    assert_eq!(m.transmit(send, &legit).err(), Some(TxError::BadCapability));
    assert!(m.transmit(send2, &legit).is_ok());
}

#[test]
fn cross_tenant_capabilities_do_not_reach_victim_traffic() {
    let mut m = NetIoModule::new();
    let (victim_id, _victim_send) = victim_channel(&mut m);
    let (attacker_id, att_send, att_recv) = attacker_channel(&mut m);

    // A frame for the victim's connection lands in the victim's ring.
    let secret = tcp_frame(PEER_IP, VICTIM_IP, 5000, 80, b"victim secret");
    assert!(matches!(
        m.deliver_software(&secret),
        Delivery::Channel { id, .. } if id == victim_id
    ));

    // The attacker holds a perfectly valid capability — for its OWN
    // channel. It cannot consume the victim's frame with it: the
    // capability names the attacker's ring, which is empty.
    assert!(m.consume(att_recv).expect("own ring readable").is_empty());
    // The victim's frame is still exactly where it was delivered.
    assert_eq!(m.channel_stats(victim_id).map(|s| s.delivered), Some(1));

    // Nor can the attacker's send capability impersonate the victim:
    // the per-channel template pins the 4-tuple.
    let impersonation = tcp_frame(VICTIM_IP, PEER_IP, 80, 5000, b"evil");
    assert!(matches!(
        m.transmit(att_send, &impersonation),
        Err(TxError::Template(_))
    ));

    // And the attacker cannot destroy the victim's channel, with or
    // without a capability in hand — destruction is owner-checked.
    assert!(!m.destroy_channel(victim_id, OwnerTag(2)));
    assert!(
        m.channel_stats(victim_id).is_some(),
        "victim channel survives"
    );
    assert!(
        m.destroy_channel(attacker_id, OwnerTag(2)),
        "own channel ok"
    );
}
