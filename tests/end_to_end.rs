//! Cross-crate integration tests exercised through the public facade:
//! full transfers under every organization, multi-protocol coexistence,
//! dynamic ARP, registry behaviours, and connection lifecycle.

#![allow(clippy::field_reassign_with_default)] // cfg tweaking reads better this way

use std::cell::RefCell;
use std::rc::Rc;

use unp::core::app::{
    AppLogic, AppOp, AppView, BulkSender, EchoApp, PingPongApp, SinkApp, TransferStats,
};
use unp::core::world::{
    bind_udp, build_two_hosts, connect, listen, send_ping, send_udp, Network, OrgKind, World,
};
use unp::tcp::TcpConfig;
use unp::trace::Ctr;
use unp::wire::Ipv4Addr;

const SERVER: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 2), 80);

const ALL_ORGS: [OrgKind; 5] = [
    OrgKind::InKernel,
    OrgKind::SingleServer,
    OrgKind::SingleServerMsg,
    OrgKind::DedicatedServer,
    OrgKind::UserLibrary,
];

fn sink_listener(w: &mut World, stats: &Rc<RefCell<TransferStats>>, cfg: TcpConfig) {
    let st = Rc::clone(stats);
    listen(
        w,
        1,
        80,
        cfg,
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
}

#[test]
fn large_transfer_integrity_all_orgs_both_networks() {
    for network in [Network::Ethernet, Network::An1] {
        for org in ALL_ORGS {
            let (mut w, mut eng) = build_two_hosts(network, org);
            let stats = TransferStats::new_shared();
            sink_listener(&mut w, &stats, TcpConfig::bulk_transfer());
            connect(
                &mut w,
                &mut eng,
                0,
                SERVER,
                TcpConfig::bulk_transfer(),
                Box::new(BulkSender::new(300_000, 8192)),
                8192,
            );
            assert!(eng.run(&mut w, 20_000_000), "{org:?}/{network:?} stuck");
            let s = stats.borrow();
            // SinkApp verifies the byte pattern internally (panics on
            // corruption), so reaching the count proves integrity.
            assert_eq!(s.bytes_received, 300_000, "{org:?}/{network:?}");
            assert!(s.peer_closed, "{org:?}/{network:?} no FIN");
            assert!(!s.reset, "{org:?}/{network:?} reset");
        }
    }
}

#[test]
fn bidirectional_echo_all_orgs() {
    for org in ALL_ORGS {
        let (mut w, mut eng) = build_two_hosts(Network::Ethernet, org);
        let stats = TransferStats::new_shared();
        listen(
            &mut w,
            1,
            80,
            TcpConfig::default(),
            Box::new(|| Box::new(EchoApp)),
        );
        connect(
            &mut w,
            &mut eng,
            0,
            SERVER,
            TcpConfig::default(),
            Box::new(PingPongApp::new(1024, 10, Rc::clone(&stats))),
            1024,
        );
        assert!(eng.run(&mut w, 20_000_000));
        assert_eq!(stats.borrow().rtts.len(), 10, "{org:?} rounds");
    }
}

#[test]
fn multiple_concurrent_connections() {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let mut all_stats = Vec::new();
    let shared: Rc<RefCell<Vec<Rc<RefCell<TransferStats>>>>> = Rc::new(RefCell::new(Vec::new()));
    let sh = Rc::clone(&shared);
    listen(
        &mut w,
        1,
        80,
        TcpConfig::default(),
        Box::new(move || {
            let st = TransferStats::new_shared();
            sh.borrow_mut().push(Rc::clone(&st));
            Box::new(SinkApp::new(st))
        }),
    );
    for _ in 0..5 {
        let st = TransferStats::new_shared();
        all_stats.push(Rc::clone(&st));
        connect(
            &mut w,
            &mut eng,
            0,
            SERVER,
            TcpConfig::default(),
            Box::new(BulkSender::new(50_000, 2048)),
            2048,
        );
    }
    assert!(eng.run(&mut w, 50_000_000));
    let sinks = shared.borrow();
    assert_eq!(sinks.len(), 5, "five connections accepted");
    for st in sinks.iter() {
        assert_eq!(st.borrow().bytes_received, 50_000);
    }
    // Each connection had its own channel; all were reaped at close.
    assert_eq!(w.metrics.get(Ctr::ConnectionsEstablished), 10); // 5 per side
    assert_eq!(w.hosts[1].netio.channel_count(), 0);
}

#[test]
fn dynamic_arp_resolution_without_static_seed() {
    // Remove the static ARP entries: the connection must still form via
    // real ARP request/reply traffic.
    for org in [OrgKind::InKernel, OrgKind::UserLibrary] {
        let (mut w, mut eng) = build_two_hosts(Network::Ethernet, org);
        let peer0 = w.hosts[1].ip;
        let peer1 = w.hosts[0].ip;
        w.hosts[0].arp = unp::proto::ArpCache::new(w.hosts[0].mac, w.hosts[0].ip);
        w.hosts[1].arp = unp::proto::ArpCache::new(w.hosts[1].mac, w.hosts[1].ip);
        let _ = (peer0, peer1);
        let stats = TransferStats::new_shared();
        sink_listener(&mut w, &stats, TcpConfig::default());
        connect(
            &mut w,
            &mut eng,
            0,
            SERVER,
            TcpConfig::default(),
            Box::new(BulkSender::new(10_000, 1024)),
            1024,
        );
        assert!(eng.run(&mut w, 10_000_000));
        assert_eq!(stats.borrow().bytes_received, 10_000, "{org:?} via ARP");
    }
}

#[test]
fn udp_and_icmp_share_the_link_with_tcp() {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    sink_listener(&mut w, &stats, TcpConfig::default());
    connect(
        &mut w,
        &mut eng,
        0,
        SERVER,
        TcpConfig::default(),
        Box::new(BulkSender::new(100_000, 4096)),
        4096,
    );
    assert!(bind_udp(&mut w, 1, 53));
    for i in 0..8u16 {
        send_udp(
            &mut w,
            &mut eng,
            0,
            4000,
            (SERVER.0, 53),
            i.to_be_bytes().to_vec(),
        );
        send_ping(&mut w, &mut eng, 0, SERVER.0, 1, i);
    }
    assert!(eng.run(&mut w, 20_000_000));
    assert_eq!(stats.borrow().bytes_received, 100_000);
    assert_eq!(w.metrics.get(Ctr::UdpDelivered), 8);
    assert_eq!(w.metrics.get(Ctr::IcmpEchoReplyReceived), 8);
    // FIFO datagram content intact.
    for i in 0..8u16 {
        let d = w.hosts[1].udp.recv_from(53).expect("datagram");
        assert_eq!(d.payload, i.to_be_bytes());
    }
}

#[test]
fn udp_to_unbound_port_counts_unreachable() {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    send_udp(
        &mut w,
        &mut eng,
        0,
        4000,
        (SERVER.0, 7777),
        b"void".to_vec(),
    );
    assert!(eng.run(&mut w, 1_000_000));
    assert_eq!(w.metrics.get(Ctr::UdpUnreachable), 1);
}

/// An app that writes a burst and aborts mid-stream.
struct Aborter {
    wrote: bool,
}

impl AppLogic for Aborter {
    fn on_connected(&mut self, _v: &AppView) -> Vec<AppOp> {
        self.wrote = true;
        vec![AppOp::Send(vec![1u8; 4096]), AppOp::Abort]
    }
}

#[test]
fn abort_resets_peer_in_all_orgs() {
    for org in ALL_ORGS {
        let (mut w, mut eng) = build_two_hosts(Network::Ethernet, org);
        let stats = TransferStats::new_shared();
        let st = Rc::clone(&stats);
        listen(
            &mut w,
            1,
            80,
            TcpConfig::default(),
            Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)).without_verify())),
        );
        connect(
            &mut w,
            &mut eng,
            0,
            SERVER,
            TcpConfig::default(),
            Box::new(Aborter { wrote: false }),
            4096,
        );
        assert!(eng.run(&mut w, 10_000_000));
        assert!(stats.borrow().reset, "{org:?}: peer must observe RST");
    }
}

#[test]
fn registry_stray_segment_draws_rst() {
    // A segment to a port nobody listens on: the registry (user-library
    // org) answers with RST; the originating TCB reports reset.
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    // No listener installed at all.
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 4242),
        TcpConfig::default(),
        Box::new(PingPongApp::new(8, 1, Rc::clone(&stats))),
        8,
    );
    assert!(eng.run(&mut w, 10_000_000));
    assert!(stats.borrow().rtts.is_empty(), "no data should flow");
    assert!(
        w.metrics.get(Ctr::HandshakeFailures) > 0 || w.metrics.get(Ctr::ConnectionsReset) > 0,
        "the SYN must be refused"
    );
}

#[test]
fn template_checks_never_fire_for_legitimate_traffic() {
    let (mut w, mut eng) = build_two_hosts(Network::An1, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    sink_listener(&mut w, &stats, TcpConfig::default());
    connect(
        &mut w,
        &mut eng,
        0,
        SERVER,
        TcpConfig::default(),
        Box::new(BulkSender::new(200_000, 4096)),
        4096,
    );
    assert!(eng.run(&mut w, 20_000_000));
    assert_eq!(stats.borrow().bytes_received, 200_000);
    assert_eq!(w.hosts[0].netio.tx_rejections, 0);
    assert_eq!(w.hosts[1].netio.tx_rejections, 0);
    assert_eq!(w.metrics.get(Ctr::TxTemplateRejections), 0);
}

#[test]
fn batching_amortizes_signals_under_load() {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    sink_listener(&mut w, &stats, TcpConfig::bulk_transfer());
    connect(
        &mut w,
        &mut eng,
        0,
        SERVER,
        TcpConfig::bulk_transfer(),
        Box::new(BulkSender::new(500_000, 4096)),
        4096,
    );
    assert!(eng.run(&mut w, 50_000_000));
    let delivered = w.metrics.get(Ctr::ChDeliveries);
    let batched = w.metrics.get(Ctr::ChBatched);
    assert!(
        batched * 10 >= delivered,
        "expect ≥10% of deliveries batched under load: {batched}/{delivered}"
    );
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
        let stats = TransferStats::new_shared();
        sink_listener(&mut w, &stats, TcpConfig::default());
        connect(
            &mut w,
            &mut eng,
            0,
            SERVER,
            TcpConfig::default(),
            Box::new(BulkSender::new(100_000, 4096)),
            4096,
        );
        eng.run(&mut w, 20_000_000);
        let last = stats.borrow().last_byte_at;
        (eng.now(), eng.executed(), last)
    };
    assert_eq!(run(), run(), "identical worlds must replay identically");
}

#[test]
fn connect_to_nonexistent_host_times_out_with_reset() {
    // SYNs to an address nobody owns vanish; the registry retransmits with
    // backoff and eventually gives up, failing the pending application.
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 99), 80),
        TcpConfig::default(),
        Box::new(PingPongApp::new(8, 1, Rc::clone(&stats))),
        8,
    );
    assert!(eng.run(&mut w, 10_000_000), "give-up path must drain");
    assert!(stats.borrow().connected_at.is_none(), "must never connect");
    assert!(stats.borrow().reset, "the app must learn of the failure");
    assert_eq!(w.metrics.get(Ctr::HandshakeFailures), 1);
    assert_eq!(w.hosts[0].registry.tracked(), 0, "registry cleaned up");
    assert_eq!(w.hosts[0].netio.channel_count(), 0, "channel reclaimed");
}

#[test]
fn oversized_udp_fragments_and_reassembles_through_the_stack() {
    // A 4000-byte datagram on a 1500-byte MTU: the IP library fragments on
    // send, the frames cross the wire separately, and the peer's IP
    // library reassembles before UDP sees it.
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    assert!(bind_udp(&mut w, 1, 2049));
    let payload: Vec<u8> = (0..4000u32).map(|i| (i % 241) as u8).collect();
    send_udp(&mut w, &mut eng, 0, 700, (SERVER.0, 2049), payload.clone());
    assert!(eng.run(&mut w, 2_000_000));
    assert!(
        w.metrics.get(Ctr::IpFragmentsHeld) >= 2,
        "fragments must traverse the reassembly path: {}",
        w.metrics.get(Ctr::IpFragmentsHeld)
    );
    let d = w.hosts[1]
        .udp
        .recv_from(2049)
        .expect("reassembled datagram");
    assert_eq!(d.payload, payload);
    assert_eq!(d.src_port, 700);
}

#[test]
fn keepalive_detects_dead_peer_through_the_world() {
    // Establish, let the transfer finish, then unplug the server host by
    // swapping its connection out from under it (simulating a crashed
    // machine that answers nothing); the client's keepalive must reset.
    let mut cfg = TcpConfig::default();
    cfg.keepalive = Some(2_000_000_000); // 2 s probes for a fast test
    cfg.max_keepalive_probes = 2;
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    listen(&mut w, 1, 80, cfg.clone(), Box::new(|| Box::new(EchoApp)));
    let client_stats = TransferStats::new_shared();
    connect(
        &mut w,
        &mut eng,
        0,
        SERVER,
        cfg,
        Box::new(PingPongApp::new(64, 1, Rc::clone(&client_stats))),
        64,
    );
    // Run until the single round completes (connection then sits idle).
    let mut steps = 0;
    while client_stats.borrow().rtts.is_empty() && eng.step(&mut w) && steps < 2_000_000 {
        steps += 1;
    }
    assert_eq!(client_stats.borrow().rtts.len(), 1);
    // Power off host 1: drop its connections so nothing answers probes.
    w.hosts[1].conns.clear();
    assert!(eng.run(&mut w, 10_000_000));
    assert!(
        client_stats.borrow().reset,
        "keepalive must detect the dead peer and reset"
    );
}

#[test]
fn promiscuous_bpf_tap_observes_connection_traffic() {
    // The Packet Filter's original purpose: user-level monitoring code.
    // Install a BPF tap for the server connection's 4-tuple and verify it
    // sees exactly the to-server half of the conversation.
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let spec = unp::filter::programs::DemuxSpec {
        link_header_len: 14,
        protocol: unp::wire::IpProtocol::Tcp,
        local_ip: SERVER.0,
        local_port: 80,
        remote_ip: None,
        remote_port: None,
    };
    let tap = w.add_tap("to-server-80", unp::filter::programs::bpf_demux(&spec));
    let stats = TransferStats::new_shared();
    sink_listener(&mut w, &stats, TcpConfig::default());
    connect(
        &mut w,
        &mut eng,
        0,
        SERVER,
        TcpConfig::default(),
        Box::new(BulkSender::new(50_000, 4096)),
        4096,
    );
    assert!(eng.run(&mut w, 20_000_000));
    assert_eq!(stats.borrow().bytes_received, 50_000);
    let captured = w.tap_matches(tap);
    // Every data segment (plus handshake pieces) headed to :80 was seen.
    let data_frames = captured.iter().filter(|(_, len)| *len > 60).count();
    assert!(
        data_frames >= 50_000 / 1460,
        "tap must capture the data stream: {data_frames} frames"
    );
    // Timestamps are monotone.
    assert!(captured.windows(2).all(|p| p[0].0 <= p[1].0));
}

#[test]
fn soak_one_megabyte_on_an1() {
    // A longer transfer on the fast network: exercises thousands of
    // segments, sustained batching, and window cycling, with full pattern
    // verification in the sink.
    let (mut w, mut eng) = build_two_hosts(Network::An1, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    sink_listener(&mut w, &stats, TcpConfig::bulk_transfer());
    connect(
        &mut w,
        &mut eng,
        0,
        SERVER,
        TcpConfig::bulk_transfer(),
        Box::new(BulkSender::new(1_000_000, 8192)),
        8192,
    );
    assert!(eng.run(&mut w, 100_000_000));
    let s = stats.borrow();
    assert_eq!(s.bytes_received, 1_000_000);
    assert!(s.peer_closed && !s.reset);
    assert!(
        s.throughput_bps().unwrap() > 8e6,
        "sustained AN1 throughput: {:.2} Mb/s",
        s.throughput_bps().unwrap() / 1e6
    );
}
