//! Journal determinism and lifecycle-join tests (satellites of the
//! tracing tentpole). Gated on the `trace` feature: with tracing compiled
//! out these tests vanish rather than fail.
#![cfg(feature = "trace")]

use std::collections::HashMap;
use std::rc::Rc;

use unp::core::app::{BulkSender, SinkApp, TransferStats};
use unp::core::world::{build_two_hosts, connect, listen, Network, OrgKind};
use unp::tcp::TcpConfig;
use unp::trace::{render, Dir, Event, Record};
use unp::wire::Ipv4Addr;

const TOTAL: u64 = 150_000;

/// How the journal is armed for one run.
enum Capture {
    Off,
    Full,
    Bounded(usize),
}

/// One Table-2-style bulk run. When capture is on the journal is armed
/// *before* the world is built, so frame ids and the sim clock start from
/// zero and the journal captures the whole run.
fn bulk_run(total: u64, user_packet: usize, capture: Capture) -> Vec<Record> {
    match capture {
        Capture::Off => {}
        Capture::Full => unp::trace::journal_start(),
        Capture::Bounded(cap) => unp::trace::journal_start_bounded(cap),
    }
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    let mut cfg = TcpConfig::bulk_transfer();
    cfg.mss_local = user_packet.min(1460);
    listen(
        &mut w,
        1,
        80,
        cfg.clone(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        cfg,
        Box::new(BulkSender::new(total, user_packet)),
        user_packet,
    );
    assert!(eng.run(&mut w, u64::MAX), "run did not drain");
    assert_eq!(stats.borrow().bytes_received, total, "transfer incomplete");
    unp::trace::journal_stop()
}

#[test]
fn identical_runs_produce_identical_journals() {
    let a = bulk_run(TOTAL, 2048, Capture::Full);
    let b = bulk_run(TOTAL, 2048, Capture::Full);
    assert!(!a.is_empty(), "journal recorded nothing");
    // Byte-identical rendering: same events, same order, same timestamps,
    // same frame ids — the journal is as deterministic as the simulation.
    assert_eq!(render(&a), render(&b));
}

#[test]
fn frame_id_join_reconstructs_every_delivered_lifecycle() {
    let recs = bulk_run(TOTAL, 4096, Capture::Full);
    let mut seq: HashMap<u64, Vec<&'static str>> = HashMap::new();
    let mut app_bytes = 0u64;
    for r in &recs {
        let kind = match &r.event {
            Event::NicRx { accepted: true, .. } => "nic_rx",
            Event::DemuxClassify { matched: true, .. } => "demux_classify",
            Event::RingEnqueue { .. } => "ring_enqueue",
            Event::TcpSegment { dir: Dir::Rx, .. } => "tcp_segment_rx",
            Event::AppDeliver { bytes, .. } => {
                app_bytes += *bytes as u64;
                continue;
            }
            _ => continue,
        };
        if let Some(f) = r.frame {
            seq.entry(f).or_default().push(kind);
        }
    }
    assert_eq!(
        app_bytes, TOTAL,
        "app_deliver bytes must cover the transfer"
    );
    // Every frame the library processed as a TCP segment must show the
    // full software receive path, in order, under its own frame id.
    let mut joined = 0u64;
    for (f, kinds) in &seq {
        if !kinds.contains(&"tcp_segment_rx") {
            continue;
        }
        let mut it = kinds.iter();
        for want in ["nic_rx", "demux_classify", "ring_enqueue", "tcp_segment_rx"] {
            assert!(
                it.any(|k| *k == want),
                "frame {f}: lifecycle missing {want} (got {kinds:?})"
            );
        }
        joined += 1;
    }
    assert!(joined > 30, "expected many delivered frames, got {joined}");
}

#[test]
fn quiescent_journal_records_nothing() {
    assert!(!unp::trace::journal_enabled());
    let recs = bulk_run(TOTAL, 2048, Capture::Off);
    assert!(recs.is_empty(), "quiescent run must not record events");
}

#[test]
fn bounded_journal_keeps_the_exact_tail_and_counts_drops() {
    let full = bulk_run(TOTAL, 2048, Capture::Full);
    assert!(full.len() > 100, "need a substantial run to truncate");

    // A capacity well under the run length: the bounded journal must hold
    // exactly the last `cap` records of the identical full run, count
    // every eviction, and hand back a right-sized Vec.
    let cap = full.len() / 3;
    let bounded = bulk_run(TOTAL, 2048, Capture::Bounded(cap));
    assert_eq!(bounded.len(), cap, "bounded journal must fill to capacity");
    assert_eq!(
        unp::trace::journal_dropped(),
        (full.len() - cap) as u64,
        "every eviction must be counted"
    );
    assert_eq!(
        render(&bounded),
        render(&full[full.len() - cap..]),
        "bounded journal must be the exact tail of the full run"
    );
    assert_eq!(
        bounded.capacity(),
        bounded.len(),
        "journal_stop must shrink the drained Vec to its length"
    );

    // A capacity wider than the run drops nothing and equals the full run.
    let wide = bulk_run(TOTAL, 2048, Capture::Bounded(full.len() * 2));
    assert_eq!(unp::trace::journal_dropped(), 0);
    assert_eq!(render(&wide), render(&full));
}
