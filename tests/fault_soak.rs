//! Seeded fault-injection soak (ISSUE 4's differential oracle): random
//! drop/duplicate/reorder/corrupt schedules, an outage window, receive-
//! ring pressure, and a mid-transfer application crash are driven through
//! multi-host worlds. Every surviving connection must deliver its byte
//! stream *exactly* — `SinkApp` verifies the position-dependent pattern,
//! so any divergence from the fault-free run panics — or fail cleanly
//! with a reset. Afterwards nothing may leak: no channel, template,
//! flow-table entry, BQI binding, tracked registry connection, gauge, or
//! pooled frame buffer survives the run.

use std::cell::RefCell;
use std::rc::Rc;

use unp::buffers::live_frames;
use unp::core::app::{AppLogic, AppOp, AppView, BulkSender, SinkApp, TransferStats};
use unp::core::faults::{Crash, FaultPlan, Outage, RingPressure};
use unp::core::world::{
    build_hosts, build_two_hosts, connect, crash_host, install_faults, listen, Network, OrgKind,
};
use unp::tcp::TcpConfig;
use unp::trace::{Ctr, Gauge};
use unp::wire::Ipv4Addr;

const XFER: u64 = 60_000;

/// Wraps a sender, mirroring the reset notification into a
/// [`TransferStats`] cell (`BulkSender` itself records nothing, but a
/// crash test must observe the RST from the *surviving* side).
struct ResetWatch {
    inner: BulkSender,
    stats: Rc<RefCell<TransferStats>>,
}

impl AppLogic for ResetWatch {
    fn on_connected(&mut self, view: &AppView) -> Vec<AppOp> {
        self.inner.on_connected(view)
    }
    fn on_send_space(&mut self, view: &AppView) -> Vec<AppOp> {
        self.inner.on_send_space(view)
    }
    fn on_reset(&mut self, _view: &AppView) {
        self.stats.borrow_mut().reset = true;
    }
}

/// Asserts the zero-leak oracle over a drained world.
fn assert_no_leaks(w: &unp::core::World) {
    for h in &w.hosts {
        assert_eq!(h.netio.channel_count(), 0, "host {} leaked channels", h.idx);
        assert_eq!(
            h.netio.flow_table_len(),
            0,
            "host {} leaked flow-table entries",
            h.idx
        );
        assert_eq!(h.registry.tracked(), 0, "host {} registry lingers", h.idx);
        assert!(h.conns.is_empty(), "host {} leaked connections", h.idx);
        if let unp::core::world::Nic::An1(nic) = &h.nic {
            // Entry 0 is the kernel-default ring, bound for the host's
            // lifetime; everything else must have been freed.
            assert!(
                nic.bqi_table.bound_entries() <= 1,
                "host {} leaked BQI bindings",
                h.idx
            );
        }
    }
    assert_eq!(
        w.metrics.gauge(Gauge::OpenChannels),
        0,
        "channel gauge leaked"
    );
    assert_eq!(
        w.metrics.gauge(Gauge::ActiveConnections),
        0,
        "connection gauge leaked"
    );
}

/// One five-host soak world: clients 0..=3 stream to server 4 while the
/// plan injects faults; host 2's application crashes mid-transfer.
fn run_soak_world(seed: u64, loss: f64) {
    let base_frames = live_frames();
    {
        // The conformance monitor rides the whole soak: faults are legal
        // behavior (loss, dup, corruption, outage, crash all have
        // conformant recoveries), so a checker that flags anything here
        // is lying. The crash freezes the flight recorder's window into
        // a postmortem even with zero violations. Gated on `trace`: with
        // emission compiled out the monitor would see nothing.
        #[cfg(feature = "trace")]
        let monitor = unp::trace::attach(Box::new(
            unp::trace::Monitor::with_recorder(256).expect_pool_drained(true),
        ));

        let (mut w, mut eng) = build_hosts(5, Network::Ethernet, OrgKind::UserLibrary);
        let sinks: Rc<RefCell<Vec<Rc<RefCell<TransferStats>>>>> = Rc::new(RefCell::new(Vec::new()));
        let sh = Rc::clone(&sinks);
        listen(
            &mut w,
            4,
            80,
            TcpConfig::default(),
            Box::new(move || {
                let st = TransferStats::new_shared();
                sh.borrow_mut().push(Rc::clone(&st));
                Box::new(SinkApp::new(st))
            }),
        );
        for client in 0..4 {
            connect(
                &mut w,
                &mut eng,
                client,
                (Ipv4Addr::new(10, 0, 0, 5), 80),
                TcpConfig::default(),
                Box::new(BulkSender::new(XFER, 4096)),
                4096,
            );
        }
        let mut plan = FaultPlan::lossy(seed, loss);
        // A 30 ms everyone-to-everyone outage opening mid-transfer (a
        // 60 kB stream at 10 Mb/s runs ~50 ms of wire time, but RTO
        // stalls make the traffic bursty — a narrow window can land in a
        // silence between bursts on some seeds).
        plan.outages.push(Outage {
            from: None,
            to: None,
            start: 30_000_000,
            end: 60_000_000,
        });
        // The server's consumer stalls briefly: rings clamp to 2 slots.
        plan.pressure.push(RingPressure {
            host: 4,
            start: 25_000_000,
            end: 28_000_000,
            cap: 2,
        });
        // Client 2's application dies mid-transfer.
        plan.crashes.push(Crash {
            host: 2,
            at: 20_000_000,
        });
        install_faults(&mut w, &mut eng, plan);

        assert!(eng.run(&mut w, 100_000_000), "soak world did not drain");

        // Differential oracle: each accepted connection either delivered
        // the full pattern-verified stream and closed in order, or failed
        // cleanly (reset, or cut off without the FIN). SinkApp's pattern
        // verification makes "delivered exactly" byte-exact against the
        // fault-free run. The crashed client may not even reach accept if
        // its dropped SYN was still waiting out the retransmit timer, so
        // three or four sinks exist — but exactly three complete.
        let sinks = sinks.borrow();
        assert!(
            (3..=4).contains(&sinks.len()),
            "unexpected accept count {}",
            sinks.len()
        );
        let mut complete = 0;
        let mut failed = 0;
        for st in sinks.iter() {
            let s = st.borrow();
            if !s.reset && s.peer_closed {
                assert_eq!(s.bytes_received, XFER, "surviving stream lost bytes");
                complete += 1;
            } else {
                assert!(
                    s.bytes_received < XFER,
                    "a failed stream cannot also have completed"
                );
                failed += 1;
            }
        }
        assert_eq!(complete, 3, "three clients survive the crash");
        assert_eq!(failed, sinks.len() - 3, "the crashed client's stream fails");

        // The schedule actually exercised every fault class.
        assert_eq!(w.metrics.get(Ctr::AppCrashes), 1);
        assert!(w.metrics.get(Ctr::FaultDrops) > 0, "no drops injected");
        assert!(w.metrics.get(Ctr::FaultDups) > 0, "no dups injected");
        assert!(
            w.metrics.get(Ctr::FaultCorrupts) > 0,
            "no corruption injected"
        );
        assert!(
            w.metrics.get(Ctr::FaultOutageDrops) > 0,
            "outage missed traffic"
        );
        assert!(
            w.metrics.get(Ctr::FrameCorruptDiscards) > 0,
            "no corrupt frame reached a checksum"
        );
        assert!(
            w.metrics.get(Ctr::ResourceReclaims) > 0,
            "crash reclaimed nothing"
        );
        // Per-link scopes aggregate to the same totals.
        let link_drops: u64 = w.metrics.links().map(|(_, l)| l.drops).sum();
        assert_eq!(link_drops, w.metrics.get(Ctr::FaultDrops));

        assert_no_leaks(&w);

        #[cfg(feature = "trace")]
        {
            let mon = unp::trace::detach_as::<unp::trace::Monitor>(monitor)
                .expect("monitor still attached");
            assert_eq!(
                mon.total_violations(),
                0,
                "conformant soak flagged (seed {seed}): {:?}",
                mon.violations().first()
            );
            let c = mon.checked();
            assert!(c.tcp_acks > 0, "ACK checker never ran");
            assert!(c.transitions > 0, "FSM checker never ran");
            assert!(c.rexmits > 0, "rexmit checker never ran under loss");
            assert!(c.ring_events > 0, "ring checker never ran");
            assert!(c.pool_events > 0, "pool checker never ran");
            assert!(c.demux_classifies > 0, "demux checker never ran");
            assert!(
                mon.postmortem().is_some(),
                "the crash must freeze the recorder into a postmortem"
            );
        }
    }
    // Worlds and engine dropped: every pooled frame backing is gone.
    assert_eq!(
        live_frames(),
        base_frames,
        "pooled frame buffers leaked (seed {seed})"
    );
}

#[test]
fn seeded_soak_fixed_seeds() {
    for (seed, loss) in [(11, 0.03), (501, 0.05), (9001, 0.02)] {
        run_soak_world(seed, loss);
    }
}

/// With the plan disabled nothing changes: a faulted-build run is
/// byte-identical to the seed behavior (the golden repro tables rely on
/// this; here we assert the counters stay silent).
#[test]
fn disabled_plan_is_inert() {
    // On a fault-free run the monitor is equally silent, and with no
    // crash the recorder never freezes.
    #[cfg(feature = "trace")]
    let monitor = unp::trace::attach(Box::new(unp::trace::Monitor::with_recorder(256)));

    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    listen(
        &mut w,
        1,
        80,
        TcpConfig::default(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        TcpConfig::default(),
        Box::new(BulkSender::new(XFER, 4096)),
        4096,
    );
    assert!(eng.run(&mut w, 50_000_000));
    assert_eq!(stats.borrow().bytes_received, XFER);
    for c in [
        Ctr::FaultDrops,
        Ctr::FaultDups,
        Ctr::FaultReorders,
        Ctr::FaultCorrupts,
        Ctr::FaultOutageDrops,
        Ctr::FrameCorruptDiscards,
        Ctr::AppCrashes,
        Ctr::ResourceReclaims,
        Ctr::ListenerVanished,
    ] {
        assert_eq!(w.metrics.get(c), 0, "{c:?} moved with faults disabled");
    }
    assert_eq!(w.metrics.links().count(), 0, "no per-link scopes created");
    assert_no_leaks(&w);

    #[cfg(feature = "trace")]
    {
        let mon =
            unp::trace::detach_as::<unp::trace::Monitor>(monitor).expect("monitor still attached");
        assert_eq!(
            mon.total_violations(),
            0,
            "clean run flagged: {:?}",
            mon.violations().first()
        );
        assert!(mon.checked().tcp_acks > 0, "monitor saw no traffic");
        assert!(
            mon.postmortem().is_none(),
            "nothing should freeze the recorder on a clean run"
        );
    }
}

/// The AN1 (hardware demux) path under the same fault vocabulary: BQI
/// bindings and channels are reclaimed after a server-side crash.
#[test]
fn an1_soak_with_server_crash() {
    let base_frames = live_frames();
    {
        let (mut w, mut eng) = build_two_hosts(Network::An1, OrgKind::UserLibrary);
        let stats = TransferStats::new_shared();
        let st = Rc::clone(&stats);
        listen(
            &mut w,
            1,
            80,
            TcpConfig::default(),
            Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
        );
        connect(
            &mut w,
            &mut eng,
            0,
            (Ipv4Addr::new(10, 0, 0, 2), 80),
            TcpConfig::default(),
            Box::new(BulkSender::new(400_000, 4096)),
            4096,
        );
        let mut plan = FaultPlan::lossy(77, 0.02);
        // The server application dies while the stream is in flight.
        plan.crashes.push(Crash {
            host: 1,
            at: 15_000_000,
        });
        install_faults(&mut w, &mut eng, plan);
        assert!(eng.run(&mut w, 100_000_000), "AN1 soak did not drain");
        assert_eq!(w.metrics.get(Ctr::AppCrashes), 1);
        assert!(w.metrics.get(Ctr::ResourceReclaims) > 0);
        assert_no_leaks(&w);
    }
    assert_eq!(live_frames(), base_frames, "AN1 soak leaked frame buffers");
}

// ---------------------------------------------------------------------
// Crash recovery / registry cleanup (ISSUE 4 satellite: registry tests)
// ---------------------------------------------------------------------

/// After a server-side crash: the peer is reset within one RTO, the
/// crashed app's port becomes re-bindable, and channel-stats retirement
/// still reached the registry's binding reports.
#[test]
fn server_crash_resets_peer_and_releases_port() {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    listen(
        &mut w,
        1,
        80,
        TcpConfig::default(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)).without_verify())),
    );
    let client_stats = TransferStats::new_shared();
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        TcpConfig::default(),
        // Keep the connection open: the crash must cut a live stream.
        Box::new(ResetWatch {
            inner: BulkSender::new(1_000_000, 4096).without_close(),
            stats: Rc::clone(&client_stats),
        }),
        4096,
    );
    // Run until mid-transfer, then kill the server's application.
    let mut steps = 0;
    while stats.borrow().bytes_received < 100_000 && eng.step(&mut w) && steps < 10_000_000 {
        steps += 1;
    }
    assert!(
        stats.borrow().bytes_received >= 100_000,
        "transfer never started"
    );
    let crash_at = eng.now();
    crash_host(&mut w, &mut eng, 1);

    // The server's library and kernel state are gone immediately.
    assert!(w.hosts[1].conns.is_empty());
    assert_eq!(w.hosts[1].netio.channel_count(), 0);
    assert_eq!(w.hosts[1].netio.flow_table_len(), 0);

    // The surviving peer sees RST within one conservative RTO (1 s), not
    // at some distant timeout.
    let mut steps = 0;
    while !client_stats.borrow().reset && eng.step(&mut w) && steps < 10_000_000 {
        steps += 1;
    }
    assert!(client_stats.borrow().reset, "peer never saw the RST");
    assert!(
        eng.now() - crash_at < 1_000_000_000,
        "RST took longer than one RTO"
    );

    // Channel retirement reached the registry before the teardown.
    assert!(
        !w.hosts[1].registry.binding_reports().is_empty(),
        "crash skipped channel-stats retirement"
    );

    // The crashed app's port is re-bindable: a new listener accepts a
    // fresh connection on the same port.
    let stats2 = TransferStats::new_shared();
    let st2 = Rc::clone(&stats2);
    listen(
        &mut w,
        1,
        80,
        TcpConfig::default(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st2)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        TcpConfig::default(),
        Box::new(BulkSender::new(20_000, 4096)),
        4096,
    );
    assert!(
        eng.run(&mut w, 50_000_000),
        "post-crash world did not drain"
    );
    assert_eq!(
        stats2.borrow().bytes_received,
        20_000,
        "port 80 not usable after crash"
    );
    assert!(stats2.borrow().peer_closed && !stats2.borrow().reset);
    assert_no_leaks(&w);
}

/// A crash while the handshake is still in flight: the registry aborts
/// the pending connection and the pre-created channel is reclaimed.
#[test]
fn crash_during_handshake_reclaims_setup() {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    listen(
        &mut w,
        1,
        80,
        TcpConfig::default(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)).without_verify())),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        TcpConfig::default(),
        Box::new(BulkSender::new(10_000, 4096)),
        4096,
    );
    // Step just far enough for the client's SYN (and its handshake
    // channel) to exist, then kill the client.
    let mut steps = 0;
    while w.hosts[0].netio.channel_count() == 0 && eng.step(&mut w) && steps < 100_000 {
        steps += 1;
    }
    assert!(
        w.hosts[0].netio.channel_count() > 0,
        "handshake never started"
    );
    crash_host(&mut w, &mut eng, 0);
    assert_eq!(
        w.hosts[0].netio.channel_count(),
        0,
        "handshake channel leaked"
    );
    assert!(w.metrics.get(Ctr::ResourceReclaims) > 0);
    assert!(
        eng.run(&mut w, 50_000_000),
        "post-crash world did not drain"
    );
    assert_eq!(w.hosts[0].registry.tracked(), 0);
    assert_no_leaks(&w);
}

/// Crashing a monolithic host aborts its kernel-held connections too
/// (the reclamation protocol is organization-independent).
#[test]
fn monolithic_crash_resets_peer() {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::InKernel);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    listen(
        &mut w,
        1,
        80,
        TcpConfig::default(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)).without_verify())),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        TcpConfig::default(),
        Box::new(BulkSender::new(500_000, 4096).without_close()),
        4096,
    );
    let mut steps = 0;
    while stats.borrow().bytes_received < 50_000 && eng.step(&mut w) && steps < 10_000_000 {
        steps += 1;
    }
    crash_host(&mut w, &mut eng, 0);
    assert!(eng.run(&mut w, 50_000_000));
    assert!(stats.borrow().reset, "monolithic crash must RST the peer");
    assert_eq!(w.metrics.get(Ctr::AppCrashes), 1);
    assert_no_leaks(&w);
}
