//! Connection inheritance (paper §3.4): when an application exits, the
//! registry server takes over its live connections — completing the close
//! protocol and holding TIME_WAIT on a normal exit, or resetting the peer
//! on an abnormal one. "A transient user linkable library is clearly not
//! appropriate for this."

use std::rc::Rc;

use unp::core::app::{BulkSender, SinkApp, TransferStats};
use unp::core::world::{app_exit, build_two_hosts, connect, listen, Network, OrgKind};
use unp::tcp::TcpConfig;
use unp::trace::Ctr;
use unp::wire::Ipv4Addr;

const SERVER: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 2), 80);

fn established_world() -> (
    unp::core::World,
    unp::core::Eng,
    Rc<std::cell::RefCell<TransferStats>>,
) {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    listen(
        &mut w,
        1,
        80,
        TcpConfig::default(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)).without_verify())),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        SERVER,
        TcpConfig::default(),
        // Keep the connection open after sending.
        Box::new(BulkSender::new(20_000, 4096).without_close()),
        4096,
    );
    let ok = {
        let mut steps = 0;
        loop {
            if stats.borrow().bytes_received == 20_000 {
                break true;
            }
            if !eng.step(&mut w) || steps > 2_000_000 {
                break false;
            }
            steps += 1;
        }
    };
    assert!(ok, "transfer should complete with the connection left open");
    (w, eng, stats)
}

#[test]
fn normal_exit_registry_completes_the_close() {
    let (mut w, mut eng, stats) = established_world();
    let cid = *w.hosts[0].conns.keys().next().expect("client conn live");
    assert_eq!(
        w.hosts[0].registry.tracked(),
        0,
        "registry idle before exit"
    );

    app_exit(&mut w, &mut eng, 0, cid, false);
    // The library no longer holds the connection...
    assert!(w.hosts[0].conns.is_empty());
    // ...and its channel was reclaimed immediately.
    assert_eq!(w.hosts[0].netio.channel_count(), 0);

    assert!(eng.run(&mut w, 5_000_000), "close dance must drain");
    // The peer saw an orderly EOF, not a reset.
    assert!(stats.borrow().peer_closed, "peer must see FIN");
    assert!(!stats.borrow().reset, "normal exit must not RST");
    assert_eq!(w.metrics.get(Ctr::ConnectionsInherited), 1);
    // The registry drained its inherited connection after TIME_WAIT.
    assert_eq!(w.hosts[0].registry.tracked(), 0);
}

#[test]
fn abnormal_exit_registry_resets_the_peer() {
    let (mut w, mut eng, stats) = established_world();
    let cid = *w.hosts[0].conns.keys().next().expect("client conn live");

    app_exit(&mut w, &mut eng, 0, cid, true);
    assert!(eng.run(&mut w, 5_000_000));
    assert!(stats.borrow().reset, "abnormal exit must RST the peer");
    assert_eq!(w.hosts[0].registry.tracked(), 0, "nothing lingers");
}

#[test]
fn monolithic_exit_closes_in_kernel() {
    for abnormal in [false, true] {
        let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::InKernel);
        let stats = TransferStats::new_shared();
        let st = Rc::clone(&stats);
        listen(
            &mut w,
            1,
            80,
            TcpConfig::default(),
            Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)).without_verify())),
        );
        connect(
            &mut w,
            &mut eng,
            0,
            SERVER,
            TcpConfig::default(),
            Box::new(BulkSender::new(10_000, 2048).without_close()),
            2048,
        );
        let mut steps = 0;
        while stats.borrow().bytes_received < 10_000 && eng.step(&mut w) && steps < 2_000_000 {
            steps += 1;
        }
        let cid = *w.hosts[0].conns.keys().next().expect("live");
        app_exit(&mut w, &mut eng, 0, cid, abnormal);
        assert!(eng.run(&mut w, 5_000_000));
        if abnormal {
            assert!(stats.borrow().reset);
        } else {
            assert!(stats.borrow().peer_closed && !stats.borrow().reset);
        }
    }
}
