//! World-level property tests: for arbitrary workload shapes, every
//! organization on every network delivers the exact byte stream and
//! terminates cleanly. (Per-packet integrity is enforced by SinkApp's
//! pattern verification; nondeterminism is impossible — the simulator is
//! single-threaded and seeded.)

#![allow(clippy::field_reassign_with_default)] // cfg tweaking reads better this way

use std::rc::Rc;

use proptest::prelude::*;

use unp::core::app::{BulkSender, EchoApp, PingPongApp, SinkApp, TransferStats};
use unp::core::world::{build_two_hosts, connect, listen, Network, OrgKind};
use unp::tcp::TcpConfig;
use unp::trace::Ctr;
use unp::wire::Ipv4Addr;

const SERVER: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 2), 80);

fn arb_org() -> impl Strategy<Value = OrgKind> {
    prop_oneof![
        Just(OrgKind::InKernel),
        Just(OrgKind::SingleServer),
        Just(OrgKind::SingleServerMsg),
        Just(OrgKind::DedicatedServer),
        Just(OrgKind::UserLibrary),
    ]
}

fn arb_net() -> impl Strategy<Value = Network> {
    prop_oneof![Just(Network::Ethernet), Just(Network::An1)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bulk transfer of arbitrary size/chunking completes, intact, under
    /// any organization on either network.
    #[test]
    fn transfers_complete_intact(
        org in arb_org(),
        net in arb_net(),
        total in 1u64..120_000,
        chunk in 1usize..8192,
        recv_buf_kb in 2usize..64,
    ) {
        let (mut w, mut eng) = build_two_hosts(net, org);
        let stats = TransferStats::new_shared();
        let st = Rc::clone(&stats);
        let mut cfg = TcpConfig::default();
        cfg.recv_buf = recv_buf_kb * 1024;
        listen(&mut w, 1, 80, cfg.clone(),
            Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))));
        connect(&mut w, &mut eng, 0, SERVER, cfg,
            Box::new(BulkSender::new(total, chunk)), chunk);
        prop_assert!(eng.run(&mut w, 80_000_000), "did not drain");
        let s = stats.borrow();
        prop_assert_eq!(s.bytes_received, total, "byte count");
        prop_assert!(s.peer_closed, "FIN must arrive");
        prop_assert!(!s.reset, "no reset expected");
        prop_assert_eq!(w.metrics.get(Ctr::TxTemplateRejections), 0u64);
    }

    /// Ping-pong of arbitrary size completes all rounds under any
    /// organization; RTTs are positive and monotone in size on average.
    #[test]
    fn ping_pong_rounds_complete(
        org in arb_org(),
        net in arb_net(),
        size in 1usize..4096,
        rounds in 1usize..12,
    ) {
        let (mut w, mut eng) = build_two_hosts(net, org);
        let stats = TransferStats::new_shared();
        listen(&mut w, 1, 80, TcpConfig::default(), Box::new(|| Box::new(EchoApp)));
        connect(&mut w, &mut eng, 0, SERVER, TcpConfig::default(),
            Box::new(PingPongApp::new(size, rounds, Rc::clone(&stats))), size);
        prop_assert!(eng.run(&mut w, 80_000_000));
        let s = stats.borrow();
        prop_assert_eq!(s.rtts.len(), rounds);
        prop_assert!(s.rtts.iter().all(|&r| r > 0));
    }
}
