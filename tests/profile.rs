//! Critical-path profiler and windowed-telemetry integration tests
//! (satellites of the profiling tentpole). Gated on the `trace` feature:
//! with tracing compiled out these tests vanish rather than fail.
#![cfg(feature = "trace")]

use std::rc::Rc;

use unp::core::app::{BulkSender, SinkApp, TransferStats};
use unp::core::faults::FaultPlan;
use unp::core::world::{build_two_hosts, connect, install_faults, listen, Network, OrgKind};
use unp::tcp::TcpConfig;
use unp::trace::{Ctr, PathOutcome, Profile, Record, Stage};
use unp::wire::Ipv4Addr;

const TOTAL: u64 = 150_000;

/// One Table-2-style bulk run with the journal armed before the world is
/// built. When `faults` is set the seeded plan is installed, so the
/// journal contains duplicated frame ids and checksum discards for the
/// join to cope with.
fn bulk_run(total: u64, user_packet: usize, faults: Option<FaultPlan>) -> Vec<Record> {
    unp::trace::journal_start();
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    let mut cfg = TcpConfig::bulk_transfer();
    cfg.mss_local = user_packet.min(1460);
    listen(
        &mut w,
        1,
        80,
        cfg.clone(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        cfg,
        Box::new(BulkSender::new(total, user_packet)),
        user_packet,
    );
    if let Some(plan) = faults {
        install_faults(&mut w, &mut eng, plan);
    }
    assert!(eng.run(&mut w, u64::MAX), "run did not drain");
    assert_eq!(stats.borrow().bytes_received, total, "transfer incomplete");
    unp::trace::journal_stop()
}

#[test]
fn clean_run_decomposes_every_delivered_frame_exactly() {
    let recs = bulk_run(TOTAL, 4096, None);
    let p = Profile::build(&recs);
    p.check_consistency().expect("profiler invariants");

    assert!(
        p.delivered() > 30,
        "expected many delivered frames, got {}",
        p.delivered()
    );
    // Outcome counts tile the trace set: every frame ends somewhere.
    let tiled: u64 = PathOutcome::ALL.iter().map(|&o| p.outcome_count(o)).sum();
    assert_eq!(tiled, p.traces.len() as u64);

    // The decomposition telescopes: per-stage components sum exactly to
    // the end-to-end span, frame by frame — no rounding, no residue.
    for t in p
        .traces
        .iter()
        .filter(|t| t.outcome == PathOutcome::Delivered)
    {
        let e2e = t.end_to_end().expect("delivered frame has both endpoints");
        let sum: u64 = t.components().iter().map(|&(_, ns)| ns).sum();
        assert_eq!(
            sum, e2e,
            "frame {}: components must sum to end-to-end",
            t.frame
        );
    }
    // And the aggregate histograms agree with the per-frame view.
    let stage_total: u128 = p.stages.iter().map(|h| h.sum()).sum();
    assert_eq!(stage_total, p.end_to_end.sum());
    assert_eq!(p.end_to_end.count(), p.delivered());
}

#[test]
fn profiler_joins_across_fault_duplicated_and_corrupt_frames() {
    // 3% loss with half-rate duplication/corruption/reordering: the
    // journal now holds repeated frame ids (wire duplicates) and frames
    // that die at the checksum. The join must keep the FIFO discipline
    // and still account for every trace.
    let recs = bulk_run(TOTAL, 2048, Some(FaultPlan::lossy(7, 0.03)));
    let p = Profile::build(&recs);
    p.check_consistency()
        .expect("profiler invariants under faults");

    // Reordering makes the receiver deliver in bursts: a queued-up run of
    // segments is handed to the app when the hole fills, and the
    // AppDeliver record carries the *triggering* frame's id — so most
    // data frames close as `processed` here and only the burst triggers
    // count as `delivered`. Both must appear.
    assert!(p.delivered() > 0, "faulty run still delivers the transfer");
    assert!(
        p.outcome_count(PathOutcome::Processed) > 30,
        "reordered segments close as processed"
    );
    let tiled: u64 = PathOutcome::ALL.iter().map(|&o| p.outcome_count(o)).sum();
    assert_eq!(tiled, p.traces.len() as u64);
    // The seeded plan corrupts frames; the checksum catches them and the
    // profiler closes those paths as corrupt-discarded rather than
    // leaving them open or cross-wiring them into a duplicate's path.
    assert!(
        p.outcome_count(PathOutcome::CorruptDiscarded) > 0,
        "expected checksum discards under the seeded corruption plan"
    );
    // Delivered traces stay exact even with duplicates in flight.
    for t in p
        .traces
        .iter()
        .filter(|t| t.outcome == PathOutcome::Delivered)
    {
        let e2e = t.end_to_end().unwrap();
        let sum: u64 = t.components().iter().map(|&(_, ns)| ns).sum();
        assert_eq!(sum, e2e);
        assert!(t.stage_time(Stage::NicRx).is_some());
        assert!(t.stage_time(Stage::Deliver).is_some());
    }
}

#[test]
fn windowed_snapshots_do_exact_delta_arithmetic() {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    listen(
        &mut w,
        1,
        80,
        TcpConfig::bulk_transfer(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        TcpConfig::bulk_transfer(),
        Box::new(BulkSender::new(TOTAL, 4096)),
        4096,
    );

    // Three snapshots bracketing two 100 ms slices of the transfer.
    let s0 = w.metrics.snapshot(eng.now());
    eng.run_until(&mut w, 100_000_000);
    let s1 = w.metrics.snapshot(eng.now());
    eng.run_until(&mut w, 200_000_000);
    let s2 = w.metrics.snapshot(eng.now());

    let w01 = s1.window_since(&s0);
    let w12 = s2.window_since(&s1);
    let w02 = s2.window_since(&s0);

    // Windows are pure deltas: adjacent slices sum to the full window.
    assert_eq!(w02.duration(), w01.duration() + w12.duration());
    assert_eq!(
        w02.delta(Ctr::FramesReceived),
        w01.delta(Ctr::FramesReceived) + w12.delta(Ctr::FramesReceived)
    );
    assert_eq!(
        w02.delta(Ctr::ChFlowHits),
        w01.delta(Ctr::ChFlowHits) + w12.delta(Ctr::ChFlowHits)
    );
    // And they agree with the raw snapshot arithmetic.
    assert_eq!(
        w01.delta(Ctr::FramesReceived),
        s1.get(Ctr::FramesReceived) - s0.get(Ctr::FramesReceived)
    );

    // Rates are delta / window-duration in seconds.
    assert!(w01.duration() > 0);
    let expect_pps = w01.delta(Ctr::FramesReceived) as f64 / (w01.duration() as f64 / 1e9);
    assert!((w01.rx_pps() - expect_pps).abs() < 1e-9);
    assert!(w01.rx_pps() > 0.0, "the transfer moves frames in slice one");

    // Derived ratios stay in range and the ring histogram windows.
    if let Some(r) = w01.flow_hit_rate() {
        assert!((0.0..=1.0).contains(&r));
    }
    assert!(
        w01.mean_ring_depth().is_some(),
        "channel deliveries must sample ring occupancy"
    );

    // A zero-length window divides nothing by zero.
    let wz = s2.window_since(&s2);
    assert_eq!(wz.duration(), 0);
    assert_eq!(wz.rx_pps(), 0.0);

    eng.run(&mut w, u64::MAX);
}

#[test]
fn global_rexmit_counters_match_connection_scopes() {
    unp::trace::journal_start();
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    listen(
        &mut w,
        1,
        80,
        TcpConfig::bulk_transfer(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        TcpConfig::bulk_transfer(),
        Box::new(BulkSender::new(TOTAL, 2048)),
        2048,
    );
    install_faults(&mut w, &mut eng, FaultPlan::lossy(11, 0.02));
    assert!(eng.run(&mut w, u64::MAX), "run did not drain");
    assert_eq!(stats.borrow().bytes_received, TOTAL);
    unp::trace::journal_stop();

    // Loss forces retransmission; the live global counters must agree
    // with the per-connection scopes filled at retirement.
    let global = w.metrics.get(Ctr::TcpRexmitBytes);
    let scoped: u64 = w.metrics.conns().map(|(_, c)| c.bytes_rexmit).sum();
    assert!(global > 0, "a 2% lossy run must retransmit");
    assert_eq!(
        global, scoped,
        "windowed rexmit counter must match retired conn scopes"
    );
    assert!(w.metrics.get(Ctr::TcpRexmitSegs) > 0);
    assert!(w.metrics.get(Ctr::TcpRttSamples) > 0);
}
