//! Differential verification of the software-demux fast path.
//!
//! The kernel's three-tier demultiplexer (exact-match 5-tuple flow table,
//! 3-tuple listen table, residual filter scan — `NetIoModule::classify`)
//! must agree with a pure linear filter scan
//! (`classify_scan_reference`) on **both** the target channel and the
//! modeled filter-instruction count, for arbitrary channel sets —
//! connected, fully-wildcard (listening), and half-wildcard bindings,
//! duplicate 5-tuples, mismatched link framing, activation subsets,
//! teardown churn — and arbitrary frames — hits, misses, fragments,
//! truncations, non-IP. On top of agreement, every hit's reported
//! [`DemuxPath`] must match the tier the winning binding distilled into
//! at creation (including the module's link-framing pin). This is the
//! invariant that lets the fast path exist at all: the reproduced tables
//! charge the 1993 scan's costs, so the mechanism underneath must be
//! unobservable except in speed.

use proptest::prelude::*;

use unp::buffers::OwnerTag;
use unp::filter::programs::DemuxSpec;
use unp::kernel::{ChannelId, DemuxPath, HeaderTemplate, NetIoModule};
use unp::wire::{
    EtherType, EthernetRepr, IpProtocol, Ipv4Addr, Ipv4Repr, MacAddr, SeqNum, TcpFlags, TcpRepr,
    UdpRepr,
};

/// Small pools so generated channels and frames collide often — the
/// interesting cases are exact hits, near-misses, and duplicate bindings,
/// not a sea of unrelated addresses.
const IPS: [Ipv4Addr; 3] = [
    Ipv4Addr::new(10, 0, 0, 1),
    Ipv4Addr::new(10, 0, 0, 2),
    Ipv4Addr::new(10, 0, 0, 3),
];
const PORTS: [u16; 4] = [80, 7, 5000, 5001];

/// One generated binding: protocol choice, local/remote endpoints drawn
/// from the pools, remote-wildcard shape, link framing, and lifecycle
/// (activated? torn down again?).
#[derive(Debug, Clone, Copy)]
struct ChanGen {
    tcp: bool,
    local: (usize, usize),
    remote: (usize, usize),
    /// How much of the remote endpoint the binding specifies: 0 = both
    /// (exact-match, flow-table tier), 1 = neither (listening socket,
    /// listen-table tier), 2 = ip only and 3 = port only (half-wildcard,
    /// residual scan tier).
    remote_kind: u8,
    /// Ethernet (14) for most; occasionally AN1 framing (16) to exercise
    /// the mismatched-link-header scan-tier fallback.
    link_header_len: usize,
    active: bool,
    destroy: bool,
}

/// One generated frame: endpoints from the pools plus a shape knob —
/// 0 = normal, 1 = non-first fragment, 2 = non-IPv4 EtherType,
/// 3 = truncated mid-header.
#[derive(Debug, Clone, Copy)]
struct FrameGen {
    tcp: bool,
    src: (usize, usize),
    dst: (usize, usize),
    shape: u8,
}

fn arb_chan() -> impl Strategy<Value = ChanGen> {
    (
        any::<bool>(),
        (0usize..IPS.len(), 0usize..PORTS.len()),
        ((0usize..IPS.len(), 0usize..PORTS.len()), 0u8..4),
        prop_oneof![Just(14usize), Just(14usize), Just(14usize), Just(16usize)],
        any::<bool>(),
        0u8..8,
    )
        .prop_map(
            |(tcp, local, (remote, remote_kind), link_header_len, active, d)| ChanGen {
                tcp,
                local,
                remote,
                remote_kind,
                link_header_len,
                active,
                destroy: d == 0, // ~1 in 8 channels is torn down again
            },
        )
}

fn arb_frame() -> impl Strategy<Value = FrameGen> {
    (
        any::<bool>(),
        (0usize..IPS.len(), 0usize..PORTS.len()),
        (0usize..IPS.len(), 0usize..PORTS.len()),
        0u8..8,
    )
        .prop_map(|(tcp, src, dst, shape)| FrameGen {
            tcp,
            src,
            dst,
            shape: shape.min(3), // bias toward normal frames
        })
}

fn spec_of(c: &ChanGen) -> DemuxSpec {
    let (ri, rp) = c.remote;
    DemuxSpec {
        link_header_len: c.link_header_len,
        protocol: if c.tcp {
            IpProtocol::Tcp
        } else {
            IpProtocol::Udp
        },
        local_ip: IPS[c.local.0],
        local_port: PORTS[c.local.1],
        remote_ip: (c.remote_kind == 0 || c.remote_kind == 2).then(|| IPS[ri]),
        remote_port: (c.remote_kind == 0 || c.remote_kind == 3).then(|| PORTS[rp]),
    }
}

/// The tier each binding distilled into at creation, replayed from the
/// same rules the module applies: exact 5-tuple → flow table, fully
/// wildcard remote → listen table, anything else → residual scan; and
/// the first *distillable* spec pins the module's key-extraction framing,
/// demoting later distillable specs with different framing to the scan
/// tier. A hit's reported [`DemuxPath`] must equal the winner's tier.
fn expected_tiers(chans: &[ChanGen]) -> Vec<DemuxPath> {
    let mut pinned: Option<usize> = None;
    chans
        .iter()
        .map(|c| {
            let spec = spec_of(c);
            let keyed = if spec.distill().is_some() {
                DemuxPath::FlowTable
            } else if spec.distill_listen().is_some() {
                DemuxPath::ListenTable
            } else {
                return DemuxPath::FilterScan;
            };
            if *pinned.get_or_insert(spec.link_header_len) == spec.link_header_len {
                keyed
            } else {
                DemuxPath::FilterScan
            }
        })
        .collect()
}

/// Delivery tests never transmit, so the template content is irrelevant;
/// it just has to be well-formed for `create_channel`.
fn template_of(spec: &DemuxSpec) -> HeaderTemplate {
    HeaderTemplate {
        link_header_len: spec.link_header_len,
        src_mac: None,
        dst_mac: None,
        ethertype: EtherType::Ipv4,
        protocol: spec.protocol,
        src_ip: spec.local_ip,
        dst_ip: spec.remote_ip.unwrap_or(Ipv4Addr::new(0, 0, 0, 0)),
        src_port: spec.local_port,
        dst_port: spec.remote_port,
        bqi: None,
    }
}

/// Builds the Ethernet frame bytes for a generated frame. All frames use
/// Ethernet framing (the module under test serves an Ethernet device);
/// AN1-framed *channels* are the mismatch case, not AN1 frames.
fn build_frame(f: &FrameGen) -> Vec<u8> {
    let src = IPS[f.src.0];
    let dst = IPS[f.dst.0];
    let payload = if f.tcp {
        TcpRepr {
            src_port: PORTS[f.src.1],
            dst_port: PORTS[f.dst.1],
            seq: SeqNum(1),
            ack_num: SeqNum(0),
            flags: TcpFlags::ack(),
            window: 1000,
            mss: None,
        }
        .build_segment(src, dst, b"x")
    } else {
        UdpRepr {
            src_port: PORTS[f.src.1],
            dst_port: PORTS[f.dst.1],
        }
        .build_datagram(src, dst, b"x")
    };
    let proto = if f.tcp {
        IpProtocol::Tcp
    } else {
        IpProtocol::Udp
    };
    let mut ip = Ipv4Repr::simple(src, dst, proto, payload.len());
    if f.shape == 1 {
        // Non-first fragment: ports live in fragment zero only, so demux
        // (both tiers) must refuse to read them here.
        ip.frag_offset = 64;
    }
    let ethertype = if f.shape == 2 {
        EtherType::Arp
    } else {
        EtherType::Ipv4
    };
    let mut bytes = EthernetRepr {
        dst: MacAddr::from_host_index(2),
        src: MacAddr::from_host_index(1),
        ethertype,
    }
    .build_frame(&ip.build_packet(&payload));
    if f.shape == 3 {
        // Truncated mid-IP-header: too short for any port comparison.
        bytes.truncate(14 + 8);
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For every generated module population and frame, the two-tier
    /// demux and the pure linear scan return the same `(target,
    /// filter_instrs)` — the fast path is unobservable except in speed.
    #[test]
    fn flow_table_demux_equals_linear_scan(
        chans in proptest::collection::vec(arb_chan(), 1..12),
        frames in proptest::collection::vec(arb_frame(), 1..24),
    ) {
        let mut m = NetIoModule::new();
        let tiers = expected_tiers(&chans);
        let mut ids: Vec<(ChannelId, ChanGen)> = Vec::new();
        for c in &chans {
            let spec = spec_of(c);
            let (id, ..) = m.create_channel(OwnerTag(1), &spec, template_of(&spec), 8, 2048);
            ids.push((id, *c));
        }
        for &(id, c) in &ids {
            if c.active {
                m.activate(id);
            }
        }
        // Teardown churn: flow-table and scan caches must stay coherent
        // through destroys, not just installs.
        for &(id, c) in &ids {
            if c.destroy {
                m.destroy_channel(id, OwnerTag(1));
            }
        }
        for f in &frames {
            let bytes = build_frame(f);
            let (fast_target, fast_instrs, path) = m.classify(&bytes);
            let (scan_target, scan_instrs) = m.classify_scan_reference(&bytes);
            prop_assert_eq!(
                fast_target, scan_target,
                "target diverged for {:?} over {:?}", f, chans
            );
            prop_assert_eq!(
                fast_instrs, scan_instrs,
                "modeled cost diverged for {:?} over {:?}", f, chans
            );
            // Tier attribution: a hit reports the tier the winner
            // distilled into at creation; a miss is charged to the scan.
            match fast_target {
                Some(id) => prop_assert_eq!(
                    path, tiers[id.0 as usize],
                    "tier diverged for {:?} over {:?}", f, chans
                ),
                None => prop_assert_eq!(
                    path, DemuxPath::FilterScan,
                    "a miss must report the scan tier for {:?}", f
                ),
            }
        }
    }

    /// Same agreement under interleaved churn: deliveries between
    /// activations and teardowns, so every intermediate cache state is
    /// exercised, not just the final population.
    #[test]
    fn agreement_holds_at_every_churn_step(
        chans in proptest::collection::vec(arb_chan(), 1..10),
        frame in arb_frame(),
    ) {
        let mut m = NetIoModule::new();
        let bytes = build_frame(&frame);
        // Valid at every prefix of the churn: a channel's tier is fixed at
        // its own creation by the already-created channels (the framing
        // pin), never by later ones, and teardown does not unpin.
        let tiers = expected_tiers(&chans);
        let check = |m: &NetIoModule| -> Result<(), TestCaseError> {
            let (ft, fi, path) = m.classify(&bytes);
            let (st, si) = m.classify_scan_reference(&bytes);
            prop_assert_eq!((ft, fi), (st, si), "diverged over {:?}", chans);
            match ft {
                Some(id) => prop_assert_eq!(
                    path, tiers[id.0 as usize],
                    "tier diverged over {:?}", chans
                ),
                None => prop_assert_eq!(path, DemuxPath::FilterScan, "miss must report scan"),
            }
            Ok(())
        };
        let mut ids = Vec::new();
        for c in &chans {
            let spec = spec_of(c);
            let (id, ..) = m.create_channel(OwnerTag(1), &spec, template_of(&spec), 8, 2048);
            check(&m)?;
            if c.active {
                m.activate(id);
                check(&m)?;
            }
            ids.push((id, *c));
        }
        for &(id, c) in &ids {
            if c.destroy {
                m.destroy_channel(id, OwnerTag(1));
                check(&m)?;
            }
        }
    }
}

/// A deterministic unique spec for the large-population oracle: every
/// 64th pair of slots is a listening binding and a half-wildcard
/// (residual) binding, the rest exact connections — each category in a
/// disjoint local-address space so the intended winner is unambiguous.
fn scale_spec(i: usize) -> DemuxSpec {
    let k = i / 64;
    let (a, b) = ((k / 250) as u8, (k % 250) as u8);
    let (local_ip, local_port, remote_ip, remote_port) = match i % 64 {
        2 => (Ipv4Addr::new(10, 2, a, b), 81, None, None),
        3 => (
            Ipv4Addr::new(10, 3, a, b),
            82,
            Some(Ipv4Addr::new(10, 9, 0, 1)),
            None,
        ),
        _ => {
            let (hi, lo) = (i / 60_000, i % 60_000);
            (
                Ipv4Addr::new(10, 0, 0, 2),
                80,
                Some(Ipv4Addr::new(
                    10,
                    1 + hi as u8,
                    (lo / 250) as u8,
                    (lo % 250) as u8,
                )),
                Some(1024 + lo as u16),
            )
        }
    };
    DemuxSpec {
        link_header_len: 14,
        protocol: IpProtocol::Tcp,
        local_ip,
        local_port,
        remote_ip,
        remote_port,
    }
}

/// A TCP frame from `remote` to `local` for the oracle probes.
fn probe_frame(local: (Ipv4Addr, u16), remote: (Ipv4Addr, u16)) -> Vec<u8> {
    let seg = TcpRepr {
        src_port: remote.1,
        dst_port: local.1,
        seq: SeqNum(1),
        ack_num: SeqNum(0),
        flags: TcpFlags::ack(),
        window: 1000,
        mss: None,
    }
    .build_segment(remote.0, local.0, b"x");
    let ip = Ipv4Repr::simple(remote.0, local.0, IpProtocol::Tcp, seg.len());
    EthernetRepr {
        dst: MacAddr::from_host_index(2),
        src: MacAddr::from_host_index(1),
        ethertype: EtherType::Ipv4,
    }
    .build_frame(&ip.build_packet(&seg))
}

/// The differential oracle at the ISSUE's 10^5-channel scale: build a
/// mixed population incrementally, churn a slice of it back out, and
/// verify (a) the incremental caches equal a from-scratch rebuild and
/// (b) `classify` agrees with the linear scan — with correct tier
/// attribution — for a probe on each tier plus a miss. Release-only: the
/// debug build's per-event cache validation plus the O(n) scan oracle
/// make this minutes-slow under `cargo test` without optimization.
#[test]
#[cfg_attr(debug_assertions, ignore)]
fn oracle_holds_at_one_hundred_thousand_channels() {
    const N: usize = 100_000;
    let mut m = NetIoModule::new();
    let mut ids = Vec::with_capacity(N);
    for i in 0..N {
        let spec = scale_spec(i);
        let (id, ..) = m.create_channel(OwnerTag(1), &spec, template_of(&spec), 1, 2048);
        // Most channels active; every 13th left installed-but-inactive so
        // the active subset differs from the installed set.
        if i % 13 != 5 {
            m.activate(id);
        }
        ids.push(id);
    }
    // Teardown churn across all three tiers (every 17th channel), then
    // the incremental caches must still equal a from-scratch rebuild.
    for (i, &id) in ids.iter().enumerate() {
        if i % 17 == 9 {
            assert!(m.destroy_channel(id, OwnerTag(1)));
        }
    }
    assert!(
        m.caches_match_rebuild(),
        "incremental caches diverged from the rebuild oracle after churn"
    );

    // One probe per tier plus a guaranteed miss. Winners chosen away from
    // the churned (i % 17 == 9) and inactive (i % 13 == 5) slices.
    let exact = scale_spec(0);
    let listen = scale_spec(2);
    // The highest-id residual binding still installed and active.
    let mut ri = N - 1;
    while ri % 64 != 3 || ri % 17 == 9 || ri % 13 == 5 {
        ri -= 1;
    }
    let residual = scale_spec(ri);
    let probes = [
        (
            probe_frame(
                (exact.local_ip, exact.local_port),
                (exact.remote_ip.unwrap(), exact.remote_port.unwrap()),
            ),
            DemuxPath::FlowTable,
        ),
        (
            probe_frame(
                (listen.local_ip, listen.local_port),
                (Ipv4Addr::new(10, 8, 0, 1), 9999),
            ),
            DemuxPath::ListenTable,
        ),
        (
            probe_frame(
                (residual.local_ip, residual.local_port),
                (residual.remote_ip.unwrap(), 9999),
            ),
            DemuxPath::FilterScan,
        ),
        (
            probe_frame(
                (Ipv4Addr::new(10, 250, 0, 1), 4444),
                (Ipv4Addr::new(10, 250, 0, 2), 5555),
            ),
            DemuxPath::FilterScan,
        ),
    ];
    for (i, (frame, want_path)) in probes.iter().enumerate() {
        let (target, instrs, path) = m.classify(frame);
        assert_eq!(
            (target, instrs),
            m.classify_scan_reference(frame),
            "probe {i} diverged from the linear-scan oracle"
        );
        assert_eq!(path, *want_path, "probe {i} resolved on the wrong tier");
        // The last probe is the miss; everything else must land.
        assert_eq!(target.is_some(), i < 3, "probe {i} hit/miss shape");
    }
}
