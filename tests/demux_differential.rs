//! Differential verification of the software-demux fast path.
//!
//! The kernel's two-tier demultiplexer (exact-match flow table + wildcard
//! filter scan, `NetIoModule::classify`) must agree with a pure linear
//! filter scan (`classify_scan_reference`) on **both** the target channel
//! and the modeled filter-instruction count, for arbitrary channel sets —
//! connected and wildcard bindings, duplicate 5-tuples, mismatched link
//! framing, activation subsets, teardown churn — and arbitrary frames —
//! hits, misses, fragments, truncations, non-IP. This is the invariant
//! that lets the fast path exist at all: the reproduced tables charge the
//! 1993 scan's costs, so the mechanism underneath must be unobservable.

use proptest::prelude::*;

use unp::buffers::OwnerTag;
use unp::filter::programs::DemuxSpec;
use unp::kernel::{ChannelId, HeaderTemplate, NetIoModule};
use unp::wire::{
    EtherType, EthernetRepr, IpProtocol, Ipv4Addr, Ipv4Repr, MacAddr, SeqNum, TcpFlags, TcpRepr,
    UdpRepr,
};

/// Small pools so generated channels and frames collide often — the
/// interesting cases are exact hits, near-misses, and duplicate bindings,
/// not a sea of unrelated addresses.
const IPS: [Ipv4Addr; 3] = [
    Ipv4Addr::new(10, 0, 0, 1),
    Ipv4Addr::new(10, 0, 0, 2),
    Ipv4Addr::new(10, 0, 0, 3),
];
const PORTS: [u16; 4] = [80, 7, 5000, 5001];

/// One generated binding: protocol choice, local/remote endpoints drawn
/// from the pools (`remote = None` wildcards, i.e. a listening socket),
/// link framing, and lifecycle (activated? torn down again?).
#[derive(Debug, Clone, Copy)]
struct ChanGen {
    tcp: bool,
    local: (usize, usize),
    remote: Option<(usize, usize)>,
    /// Ethernet (14) for most; occasionally AN1 framing (16) to exercise
    /// the mismatched-link-header scan-tier fallback.
    link_header_len: usize,
    active: bool,
    destroy: bool,
}

/// One generated frame: endpoints from the pools plus a shape knob —
/// 0 = normal, 1 = non-first fragment, 2 = non-IPv4 EtherType,
/// 3 = truncated mid-header.
#[derive(Debug, Clone, Copy)]
struct FrameGen {
    tcp: bool,
    src: (usize, usize),
    dst: (usize, usize),
    shape: u8,
}

fn arb_chan() -> impl Strategy<Value = ChanGen> {
    (
        any::<bool>(),
        (0usize..IPS.len(), 0usize..PORTS.len()),
        proptest::option::of((0usize..IPS.len(), 0usize..PORTS.len())),
        prop_oneof![Just(14usize), Just(14usize), Just(14usize), Just(16usize)],
        any::<bool>(),
        0u8..8,
    )
        .prop_map(|(tcp, local, remote, link_header_len, active, d)| ChanGen {
            tcp,
            local,
            remote,
            link_header_len,
            active,
            destroy: d == 0, // ~1 in 8 channels is torn down again
        })
}

fn arb_frame() -> impl Strategy<Value = FrameGen> {
    (
        any::<bool>(),
        (0usize..IPS.len(), 0usize..PORTS.len()),
        (0usize..IPS.len(), 0usize..PORTS.len()),
        0u8..8,
    )
        .prop_map(|(tcp, src, dst, shape)| FrameGen {
            tcp,
            src,
            dst,
            shape: shape.min(3), // bias toward normal frames
        })
}

fn spec_of(c: &ChanGen) -> DemuxSpec {
    DemuxSpec {
        link_header_len: c.link_header_len,
        protocol: if c.tcp {
            IpProtocol::Tcp
        } else {
            IpProtocol::Udp
        },
        local_ip: IPS[c.local.0],
        local_port: PORTS[c.local.1],
        remote_ip: c.remote.map(|(i, _)| IPS[i]),
        remote_port: c.remote.map(|(_, p)| PORTS[p]),
    }
}

/// Delivery tests never transmit, so the template content is irrelevant;
/// it just has to be well-formed for `create_channel`.
fn template_of(spec: &DemuxSpec) -> HeaderTemplate {
    HeaderTemplate {
        link_header_len: spec.link_header_len,
        src_mac: None,
        dst_mac: None,
        ethertype: EtherType::Ipv4,
        protocol: spec.protocol,
        src_ip: spec.local_ip,
        dst_ip: spec.remote_ip.unwrap_or(Ipv4Addr::new(0, 0, 0, 0)),
        src_port: spec.local_port,
        dst_port: spec.remote_port,
        bqi: None,
    }
}

/// Builds the Ethernet frame bytes for a generated frame. All frames use
/// Ethernet framing (the module under test serves an Ethernet device);
/// AN1-framed *channels* are the mismatch case, not AN1 frames.
fn build_frame(f: &FrameGen) -> Vec<u8> {
    let src = IPS[f.src.0];
    let dst = IPS[f.dst.0];
    let payload = if f.tcp {
        TcpRepr {
            src_port: PORTS[f.src.1],
            dst_port: PORTS[f.dst.1],
            seq: SeqNum(1),
            ack_num: SeqNum(0),
            flags: TcpFlags::ack(),
            window: 1000,
            mss: None,
        }
        .build_segment(src, dst, b"x")
    } else {
        UdpRepr {
            src_port: PORTS[f.src.1],
            dst_port: PORTS[f.dst.1],
        }
        .build_datagram(src, dst, b"x")
    };
    let proto = if f.tcp {
        IpProtocol::Tcp
    } else {
        IpProtocol::Udp
    };
    let mut ip = Ipv4Repr::simple(src, dst, proto, payload.len());
    if f.shape == 1 {
        // Non-first fragment: ports live in fragment zero only, so demux
        // (both tiers) must refuse to read them here.
        ip.frag_offset = 64;
    }
    let ethertype = if f.shape == 2 {
        EtherType::Arp
    } else {
        EtherType::Ipv4
    };
    let mut bytes = EthernetRepr {
        dst: MacAddr::from_host_index(2),
        src: MacAddr::from_host_index(1),
        ethertype,
    }
    .build_frame(&ip.build_packet(&payload));
    if f.shape == 3 {
        // Truncated mid-IP-header: too short for any port comparison.
        bytes.truncate(14 + 8);
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For every generated module population and frame, the two-tier
    /// demux and the pure linear scan return the same `(target,
    /// filter_instrs)` — the fast path is unobservable except in speed.
    #[test]
    fn flow_table_demux_equals_linear_scan(
        chans in proptest::collection::vec(arb_chan(), 1..12),
        frames in proptest::collection::vec(arb_frame(), 1..24),
    ) {
        let mut m = NetIoModule::new();
        let mut ids: Vec<(ChannelId, ChanGen)> = Vec::new();
        for c in &chans {
            let spec = spec_of(c);
            let (id, ..) = m.create_channel(OwnerTag(1), &spec, template_of(&spec), 8, 2048);
            ids.push((id, *c));
        }
        for &(id, c) in &ids {
            if c.active {
                m.activate(id);
            }
        }
        // Teardown churn: flow-table and scan caches must stay coherent
        // through destroys, not just installs.
        for &(id, c) in &ids {
            if c.destroy {
                m.destroy_channel(id, OwnerTag(1));
            }
        }
        for f in &frames {
            let bytes = build_frame(f);
            let (fast_target, fast_instrs, _path) = m.classify(&bytes);
            let (scan_target, scan_instrs) = m.classify_scan_reference(&bytes);
            prop_assert_eq!(
                fast_target, scan_target,
                "target diverged for {:?} over {:?}", f, chans
            );
            prop_assert_eq!(
                fast_instrs, scan_instrs,
                "modeled cost diverged for {:?} over {:?}", f, chans
            );
        }
    }

    /// Same agreement under interleaved churn: deliveries between
    /// activations and teardowns, so every intermediate cache state is
    /// exercised, not just the final population.
    #[test]
    fn agreement_holds_at_every_churn_step(
        chans in proptest::collection::vec(arb_chan(), 1..10),
        frame in arb_frame(),
    ) {
        let mut m = NetIoModule::new();
        let bytes = build_frame(&frame);
        let check = |m: &NetIoModule| -> Result<(), TestCaseError> {
            let (ft, fi, _) = m.classify(&bytes);
            let (st, si) = m.classify_scan_reference(&bytes);
            prop_assert_eq!((ft, fi), (st, si), "diverged over {:?}", chans);
            Ok(())
        };
        let mut ids = Vec::new();
        for c in &chans {
            let spec = spec_of(c);
            let (id, ..) = m.create_channel(OwnerTag(1), &spec, template_of(&spec), 8, 2048);
            check(&m)?;
            if c.active {
                m.activate(id);
                check(&m)?;
            }
            ids.push((id, *c));
        }
        for &(id, c) in &ids {
            if c.destroy {
                m.destroy_channel(id, OwnerTag(1));
                check(&m)?;
            }
        }
    }
}
